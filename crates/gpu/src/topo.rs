//! Interconnect topology and the Transport charging layer.
//!
//! The flat [`CostModel`] assumes every transfer gets a dedicated,
//! uncontended wire. This module replaces that assumption with a graph of
//! [`Link`]s: each `(src, dst)` endpoint pair maps to a *route* (an ordered
//! list of links), and every link is a serialized virtual-time resource
//! ([`sim_des::Resource`]) — concurrent transfers crossing the same hop
//! genuinely queue behind each other.
//!
//! Four node shapes are modeled ([`TopologyKind`]):
//!
//! * **NvlinkAllToAll** — the HGX baseline: a dedicated full-duplex NVLink
//!   per ordered device pair. Uncontended charges reproduce the flat model
//!   exactly; queueing appears only when the *same* ordered pair carries
//!   overlapping transfers.
//! * **NvlinkRing** — devices on a bidirectional ring; traffic takes the
//!   shorter arc and pays a forwarding latency per intermediate hop, and
//!   distant pairs contend for the ring segments between them.
//! * **PcieTree** — no fast fabric: each device hangs off a PCIe lane under
//!   a shared host bridge (4 devices per bridge); cross-bridge traffic
//!   funnels through the bridge uplinks, the classic shared-hop bottleneck.
//! * **TwoNode** — two NVLink all-to-all nodes joined by one NIC per node;
//!   every cross-node flow shares the two NICs.
//!
//! All charging flows through [`Transport`]: fixed per-op software latencies
//! still come from the [`CostModel`], but wire time and queueing come from
//! the route. Fault-injected link degradation (`FaultState::link_mult`) is
//! applied in exactly one place, [`Transport::put_signal_delivery`].

use std::collections::HashMap;
use std::sync::Arc;

use sim_des::{us, FaultState, Resource, ResourceStats, SimDur, SimTime};

use crate::cost::CostModel;
use crate::mem::{DevId, Place};
use crate::resilience::{HealedRoutes, PartitionedNetwork};

/// Which interconnect graph a machine charges transfers on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Dedicated NVLink per ordered device pair (HGX all-to-all).
    NvlinkAllToAll,
    /// Bidirectional NVLink ring; shorter-arc routing with forwarding hops.
    NvlinkRing,
    /// PCIe tree: per-device lanes under shared host bridges, no fast fabric.
    PcieTree,
    /// Two all-to-all nodes bridged by one NIC link per node.
    TwoNode,
}

impl TopologyKind {
    /// All presets, in display order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::NvlinkAllToAll,
        TopologyKind::NvlinkRing,
        TopologyKind::PcieTree,
        TopologyKind::TwoNode,
    ];

    /// Short human-readable name (used by figures and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::NvlinkAllToAll => "nvlink-all-to-all",
            TopologyKind::NvlinkRing => "nvlink-ring",
            TopologyKind::PcieTree => "pcie-tree",
            TopologyKind::TwoNode => "two-node",
        }
    }
}

/// One physical link: a serialized channel with fixed bandwidth.
#[derive(Debug)]
pub struct Link {
    name: String,
    gbps: f64,
    /// Forwarding latency paid when a message *enters* this link from a
    /// previous hop (zero-cost on the first hop of a route).
    hop_latency: SimDur,
    res: Resource,
}

impl Link {
    fn new(name: String, gbps: f64, hop_latency: SimDur) -> Link {
        Link {
            name,
            gbps,
            hop_latency,
            res: Resource::new(),
        }
    }

    /// Link name, e.g. `nvl0>1`, `pcie.lane3`, `pcie.bridge0`, `nic1`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective bandwidth of this link (GB/s).
    pub fn gbps(&self) -> f64 {
        self.gbps
    }

    /// Lifetime occupancy counters (reservations, busy time, queue delay).
    pub fn stats(&self) -> ResourceStats {
        self.res.stats()
    }
}

/// A transfer endpoint: the host, or one device of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Host memory (behind the PCIe root).
    Host,
    /// A device's HBM.
    Dev(DevId),
}

impl From<DevId> for Endpoint {
    fn from(d: DevId) -> Endpoint {
        Endpoint::Dev(d)
    }
}

impl From<Place> for Endpoint {
    fn from(p: Place) -> Endpoint {
        match p.device() {
            Some(d) => Endpoint::Dev(d),
            None => Endpoint::Host,
        }
    }
}

/// Devices sharing one PCIe host bridge in the [`TopologyKind::PcieTree`]
/// preset.
const PCIE_DEVICES_PER_BRIDGE: usize = 4;

/// The interconnect graph: links plus per-pair routes.
#[derive(Debug)]
pub struct Topology {
    kind: TopologyKind,
    n_devices: usize,
    links: Vec<Link>,
    /// `dev_routes[src][dst]` = link indices crossed by a `src -> dst`
    /// device transfer (empty when `src == dst`).
    dev_routes: Vec<Vec<Vec<usize>>>,
    /// `host_routes[dev]` = link indices between the host and `dev`.
    host_routes: Vec<Vec<usize>>,
    /// Ring embedding derived from the graph (see [`Topology::ring_order`]).
    ring: Vec<usize>,
}

impl Topology {
    /// Build the link graph for `kind` over `n` devices, calibrated from
    /// `cost` (bandwidths and forwarding latencies).
    #[allow(clippy::needless_range_loop)] // (src, dst) matrix indexing reads best
    pub fn build(kind: TopologyKind, n: usize, cost: &CostModel) -> Arc<Topology> {
        assert!(n >= 1, "topology needs at least one device");
        let mut links = Vec::new();
        let mut dev_routes = vec![vec![Vec::new(); n]; n];
        let mut host_routes = vec![Vec::new(); n];

        // Per-device PCIe lane to the host. Every preset has one; in the
        // PcieTree preset the same lane also carries peer traffic.
        let bridge_hop = us(cost.pcie_latency_us) * 0.25;
        let lane_base = links.len();
        for d in 0..n {
            links.push(Link::new(
                format!("pcie.lane{d}"),
                cost.pcie_gbps,
                bridge_hop,
            ));
            host_routes[d].push(lane_base + d);
        }

        match kind {
            TopologyKind::NvlinkAllToAll => {
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let idx = links.len();
                        links.push(Link::new(
                            format!("nvl{s}>{d}"),
                            cost.nvlink_gbps,
                            SimDur::ZERO,
                        ));
                        dev_routes[s][d].push(idx);
                    }
                }
            }
            TopologyKind::NvlinkRing => {
                // One shared link per undirected ring edge {i, i+1 mod n};
                // both directions and all pass-through flows contend on it.
                let fwd = us(cost.p2p_latency_us);
                let edge_base = links.len();
                let edges = if n > 1 { n } else { 0 };
                for e in 0..edges {
                    links.push(Link::new(
                        format!("ring{e}>{}", (e + 1) % n),
                        cost.nvlink_gbps,
                        fwd,
                    ));
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        // Shorter arc; ties go clockwise (increasing index).
                        let cw = (d + n - s) % n;
                        let ccw = n - cw;
                        let route = &mut dev_routes[s][d];
                        if cw <= ccw {
                            for h in 0..cw {
                                route.push(edge_base + (s + h) % n);
                            }
                        } else {
                            for h in 0..ccw {
                                route.push(edge_base + (s + n - 1 - h) % n);
                            }
                        }
                    }
                }
            }
            TopologyKind::PcieTree => {
                // lanes (built above) + one shared uplink per bridge; peer
                // traffic crosses its own lane, the bridge uplink(s), and
                // the destination lane.
                let n_bridges = n.div_ceil(PCIE_DEVICES_PER_BRIDGE);
                let bridge_base = links.len();
                for b in 0..n_bridges {
                    links.push(Link::new(
                        format!("pcie.bridge{b}"),
                        cost.pcie_gbps,
                        bridge_hop,
                    ));
                }
                let bridge_of = |d: usize| d / PCIE_DEVICES_PER_BRIDGE;
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let route = &mut dev_routes[s][d];
                        route.push(lane_base + s);
                        if bridge_of(s) == bridge_of(d) {
                            // P2P through the shared switch under one bridge.
                            route.push(bridge_base + bridge_of(s));
                        } else {
                            route.push(bridge_base + bridge_of(s));
                            route.push(bridge_base + bridge_of(d));
                        }
                        route.push(lane_base + d);
                    }
                }
            }
            TopologyKind::TwoNode => {
                // Node 0 holds devices [0, split); node 1 the rest. Intra-
                // node pairs get dedicated NVLinks; cross-node flows share
                // one NIC per node.
                let split = n.div_ceil(2);
                let nic_hop = us(cost.nic_latency_us);
                let nic0 = links.len();
                links.push(Link::new("nic0".into(), cost.nic_gbps, nic_hop));
                let nic1 = links.len();
                links.push(Link::new("nic1".into(), cost.nic_gbps, nic_hop));
                let node_of = |d: usize| usize::from(d >= split);
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        if node_of(s) == node_of(d) {
                            let idx = links.len();
                            links.push(Link::new(
                                format!("nvl{s}>{d}"),
                                cost.nvlink_gbps,
                                SimDur::ZERO,
                            ));
                            dev_routes[s][d].push(idx);
                        } else {
                            let (a, b) = if node_of(s) == 0 {
                                (nic0, nic1)
                            } else {
                                (nic1, nic0)
                            };
                            dev_routes[s][d].push(a);
                            dev_routes[s][d].push(b);
                        }
                    }
                }
            }
        }

        let mut topo = Topology {
            kind,
            n_devices: n,
            links,
            dev_routes,
            host_routes,
            ring: Vec::new(),
        };
        topo.ring = topo.derive_ring();
        Arc::new(topo)
    }

    /// Greedy nearest-neighbor ring embedding: start at device 0, repeatedly
    /// append the unvisited device with the shortest route (ties broken by
    /// index). For every preset this yields the natural `0..n` order, but it
    /// is *derived* from the route table, not assumed — collectives consume
    /// this instead of hardcoded rank arithmetic.
    fn derive_ring(&self) -> Vec<usize> {
        let n = self.n_devices;
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut cur = 0usize;
        visited[0] = true;
        order.push(0);
        for _ in 1..n {
            let next = (0..n)
                .filter(|&d| !visited[d])
                .min_by_key(|&d| (self.dev_routes[cur][d].len(), d))
                .expect("unvisited device exists");
            visited[next] = true;
            order.push(next);
            cur = next;
        }
        order
    }

    /// Which preset this graph was built from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of devices in the graph.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// All links (for occupancy stats and diagnostics).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The ring embedding: a permutation of `0..n` in which consecutive
    /// entries are route-nearest neighbors. Ring collectives send to
    /// `order[(pos + 1) % n]`.
    pub fn ring_order(&self) -> &[usize] {
        &self.ring
    }

    /// Position of `pe` in [`Topology::ring_order`].
    pub fn ring_position(&self, pe: usize) -> usize {
        self.ring
            .iter()
            .position(|&p| p == pe)
            .expect("pe in ring order")
    }

    /// Number of links a `src -> dst` device transfer crosses.
    pub fn route_hops(&self, src: usize, dst: usize) -> usize {
        self.dev_routes[src][dst].len()
    }

    /// Assign each device to one of `shards` partitions for intra-run
    /// parallel simulation: contiguous chunks of [`Topology::ring_order`],
    /// so ring neighbors stay co-located and only chunk-boundary traffic
    /// crosses shards. `plan[dev]` is the shard of device `dev`.
    ///
    /// The plan depends only on the topology and the shard count — never
    /// on wall-clock state — so a given `(topology, shards)` pair always
    /// partitions identically.
    pub fn partition_hints(&self, shards: usize) -> Vec<usize> {
        assert!(shards >= 1, "need at least one shard");
        let n = self.n_devices;
        let mut plan = vec![0usize; n];
        for (pos, &dev) in self.ring.iter().enumerate() {
            plan[dev] = (pos * shards / n).min(shards - 1);
        }
        plan
    }

    /// Virtual-time forwarding latency of the base `src -> dst` route: the
    /// sum of per-hop latencies after the first hop (the first hop of a
    /// route is charged no `hop_latency`, matching the transfer cost
    /// model). Zero for `src == dst` and for direct single-link routes.
    pub fn route_forward_latency(&self, src: usize, dst: usize) -> SimDur {
        self.dev_routes[src][dst]
            .iter()
            .skip(1)
            .map(|&idx| self.links[idx].hop_latency)
            .sum()
    }

    /// Conservative lookahead for a partition `plan`: the smallest
    /// virtual-time cost of any cross-shard device interaction, computed
    /// as `base` (software send overhead, always paid) plus the minimum
    /// route-forwarding latency over all cross-shard pairs. When no pair
    /// crosses shards (one shard, or a single device) the base alone is
    /// returned.
    ///
    /// Any cross-shard message modeled on this topology takes at least
    /// this long, so a sharded engine windowed on it never delivers into
    /// the past ([`sim_des::ShardedEngine`] asserts exactly that).
    pub fn partition_lookahead(&self, plan: &[usize], base: SimDur) -> SimDur {
        assert_eq!(plan.len(), self.n_devices, "plan covers every device");
        let mut min_cross: Option<SimDur> = None;
        for src in 0..self.n_devices {
            for dst in 0..self.n_devices {
                if src == dst || plan[src] == plan[dst] {
                    continue;
                }
                let fwd = self.route_forward_latency(src, dst);
                min_cross = Some(match min_cross {
                    Some(m) if m <= fwd => m,
                    _ => fwd,
                });
            }
        }
        base + min_cross.unwrap_or(SimDur::ZERO)
    }

    /// PEs ordered by route distance from `root` (root first, ties by
    /// index): the order in which a topology-aware broadcast fans out.
    pub fn bcast_order(&self, root: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_devices).collect();
        order.sort_by_key(|&d| {
            if d == root {
                (0, d)
            } else {
                (1 + self.dev_routes[root][d].len(), d)
            }
        });
        order
    }

    /// The ring embedding restricted to `members` (ascending PE ids): the
    /// base ring with every non-member spliced out. This is how collectives
    /// *heal* around crashed PEs — survivors keep their relative ring
    /// positions, so the healed order is identical on every member.
    pub fn ring_order_among(&self, members: &[usize]) -> Vec<usize> {
        self.ring
            .iter()
            .copied()
            .filter(|p| members.contains(p))
            .collect()
    }

    /// The base (fault-free) device route `src -> dst`.
    pub(crate) fn dev_route(&self, src: usize, dst: usize) -> &[usize] {
        &self.dev_routes[src][dst]
    }

    fn route(&self, src: Endpoint, dst: Endpoint) -> &[usize] {
        match (src, dst) {
            (Endpoint::Dev(s), Endpoint::Dev(d)) if s != d => &self.dev_routes[s.0][d.0],
            (Endpoint::Host, Endpoint::Dev(d)) | (Endpoint::Dev(d), Endpoint::Host) => {
                &self.host_routes[d.0]
            }
            _ => &[],
        }
    }
}

/// Healed route tables keyed by the active dead-pair set, computed once
/// per set per machine and shared.
type HealedCache = sim_des::lock::Mutex<HashMap<Vec<(usize, usize)>, Arc<HealedRoutes>>>;

/// The single charging API for all inter-endpoint transfers.
///
/// Combines the [`Topology`] (routes, queueing) with the [`CostModel`]
/// (fixed software latencies). Cheap to clone: the graph is shared.
#[derive(Debug, Clone)]
pub struct Transport {
    topo: Arc<Topology>,
    cost: CostModel,
    /// Healed route tables keyed by the active dead-pair set (see
    /// [`crate::resilience`]); shared across clones so each table is
    /// computed once per machine.
    healed: Arc<HealedCache>,
    /// Completion time of the last put-with-signal delivery per
    /// `(src, dst)` route. Deliveries on one route complete in issue order
    /// (RDMA per-connection FIFO): without the clamp, a short put issued
    /// behind a long degraded-window put could overtake it, letting a
    /// `Set`-signal waiter observe a *later* iteration's flag before the
    /// *earlier* iteration's payload has landed. Shared across clones like
    /// link occupancy.
    fifo: Arc<sim_des::lock::Mutex<HashMap<(usize, usize), SimTime>>>,
}

impl Transport {
    /// Pair a topology with its cost calibration.
    pub fn new(topo: Arc<Topology>, cost: CostModel) -> Transport {
        Transport {
            topo,
            cost,
            healed: Arc::new(sim_des::lock::Mutex::new(HashMap::new())),
            fifo: Arc::new(sim_des::lock::Mutex::new(HashMap::new())),
        }
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The cost calibration (fixed latencies, compute roofline).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Partition the devices into `shards` regions for intra-run parallel
    /// simulation (see [`Topology::partition_hints`]).
    pub fn partition_hints(&self, shards: usize) -> Vec<usize> {
        self.topo.partition_hints(shards)
    }

    /// Conservative lookahead for `plan` under this transport's cost
    /// model: the signal software overhead (always paid by a cross-device
    /// signal delivery) plus the minimum cross-shard route-forwarding
    /// latency (see [`Topology::partition_lookahead`]).
    pub fn shard_lookahead(&self, plan: &[usize]) -> SimDur {
        self.topo
            .partition_lookahead(plan, self.cost.shmem_signal())
    }

    /// Wire time of moving `bytes` from `src` to `dst` starting at `now`,
    /// reserving every link on the route and queueing behind earlier
    /// traffic on shared hops.
    ///
    /// Cut-through model: the message head advances to hop *k+1* after
    /// paying that link's forwarding latency and waiting for it to drain;
    /// each link is occupied for its own serialization time. Fixed per-op
    /// latencies (put/MPI/DMA issue costs) are *not* included — the typed
    /// wrappers below layer those on top.
    pub fn charge(&self, src: Endpoint, dst: Endpoint, bytes: u64, now: SimTime) -> SimDur {
        self.charge_scaled(src, dst, bytes, now, 1.0, 1.0)
    }

    /// [`Transport::charge`] with a bandwidth multiplier (`bw_scale`, e.g.
    /// block-cooperative puts) and a fault slowdown (`inv_bw`, stretches
    /// each hop's serialization time).
    pub fn charge_scaled(
        &self,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        self.charge_route(self.topo.route(src, dst), bytes, now, bw_scale, inv_bw)
    }

    /// The cut-through charging core over an explicit link sequence (the
    /// base route, or a healed route relayed through intermediate devices).
    fn charge_route(
        &self,
        route: &[usize],
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        let mut head = now;
        let mut finish = now;
        for (i, &idx) in route.iter().enumerate() {
            let link = &self.topo.links[idx];
            if i > 0 {
                head += link.hop_latency;
            }
            let wire = CostModel::bw_time(bytes, link.gbps * bw_scale) * inv_bw;
            let r = link.res.reserve(head, wire);
            head = r.start;
            finish = r.end;
        }
        finish.since(now)
    }

    /// Dispatch a `memcpyAsync` between two places: label + duration.
    pub fn memcpy(
        &self,
        src: Place,
        dst: Place,
        bytes: u64,
        now: SimTime,
    ) -> (SimDur, &'static str) {
        let (s, d) = (Endpoint::from(src), Endpoint::from(dst));
        match (s, d) {
            (Endpoint::Host, _) | (_, Endpoint::Host) => (
                us(self.cost.pcie_latency_us) + self.charge(s, d, bytes, now),
                "memcpy pcie",
            ),
            (Endpoint::Dev(a), Endpoint::Dev(b)) if a == b => {
                (self.cost.local_copy(bytes), "memcpy local")
            }
            _ => (
                us(self.cost.p2p_latency_us) + self.charge(s, d, bytes, now),
                "memcpy p2p",
            ),
        }
    }

    /// Host-initiated peer-to-peer DMA between two devices.
    pub fn p2p(&self, src: DevId, dst: DevId, bytes: u64, now: SimTime) -> SimDur {
        if src == dst {
            return self.cost.local_copy(bytes);
        }
        us(self.cost.p2p_latency_us) + self.charge(src.into(), dst.into(), bytes, now)
    }

    /// Host <-> device staging copy (checkpoints, pinned-buffer staging).
    pub fn host_copy(&self, dev: DevId, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.pcie_latency_us) + self.charge(Endpoint::Host, dev.into(), bytes, now)
    }

    /// Device-initiated contiguous put of `bytes` from PE `src` to PE `dst`.
    pub fn shmem_put(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.shmem_put_us) + self.dev_charge(src, dst, bytes, now, 1.0, 1.0)
    }

    /// Block-cooperative contiguous put (`nvshmemx_putmem_block`).
    pub fn shmem_put_block(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.shmem_put_us)
            + self.dev_charge(src, dst, bytes, now, self.cost.shmem_block_bw_scale, 1.0)
    }

    /// Mapped single-element puts: `count` `nvshmem_<T>_p` calls issued by
    /// up to `threads` GPU threads in parallel.
    pub fn shmem_p_mapped(
        &self,
        src: usize,
        dst: usize,
        count: u64,
        threads: u64,
        now: SimTime,
    ) -> SimDur {
        let waves = count.div_ceil(threads.max(1)).max(1);
        us(self.cost.shmem_p_us) * waves + self.dev_charge(src, dst, count * 8, now, 1.0, 1.0)
    }

    /// Strided `iput`/`iget` of `elems` elements of `elem_bytes` each.
    pub fn shmem_iput(
        &self,
        src: usize,
        dst: usize,
        elems: u64,
        elem_bytes: u64,
        now: SimTime,
    ) -> SimDur {
        us(self.cost.shmem_put_us)
            + us(self.cost.shmem_iput_elem_us) * elems
            + self.dev_charge(src, dst, elems * elem_bytes, now, 1.0, 1.0)
    }

    /// Single-element `nvshmem_<T>_p` remote store. Carries no measurable
    /// payload, but still rides the route: it queues behind bulk transfers
    /// in flight on the same links.
    pub fn shmem_p(&self, src: usize, dst: usize, now: SimTime) -> SimDur {
        us(self.cost.shmem_p_us) + self.dev_charge(src, dst, 0, now, 1.0, 1.0)
    }

    /// Device-initiated signal (or the signal half of put-with-signal),
    /// ordered behind route traffic like [`Transport::shmem_p`].
    pub fn shmem_signal(&self, src: usize, dst: usize, now: SimTime) -> SimDur {
        us(self.cost.shmem_signal_us) + self.dev_charge(src, dst, 0, now, 1.0, 1.0)
    }

    /// Host-path MPI message time for `bytes` between two PEs' devices.
    pub fn mpi_msg(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.mpi_msg_us) + self.dev_charge(src, dst, bytes, now, 1.0, 1.0)
    }

    /// Delivery cost of a put-with-signal from PE `src` to PE `dst` — the
    /// ONE place fault link degradation (`FaultState::link_mult`) is
    /// applied. `block` selects the block-cooperative bandwidth scale.
    ///
    /// An active link fault stretches the put issue latency and every
    /// hop's serialization time by the bandwidth multiplier (degraded links
    /// stay occupied longer, so contention compounds, as it should) and the
    /// signal by the latency multiplier.
    pub fn put_signal_delivery(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        block: bool,
    ) -> SimDur {
        match self.try_put_signal_delivery(faults, src, dst, bytes, now, block) {
            Ok(d) => d,
            Err(p) => panic!("{p}"),
        }
    }

    /// [`Transport::put_signal_delivery`] surfacing network partitions as
    /// an error instead of a panic. When a hard link failure
    /// ([`sim_des::LinkFault::is_kill`]) has severed the direct `src <-> dst`
    /// connection, the transfer is **rerouted** over the healed route table
    /// for the active dead-pair set — relayed cut-through over surviving
    /// pairs — and only a fully partitioned network is an error.
    pub fn try_put_signal_delivery(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        block: bool,
    ) -> Result<SimDur, PartitionedNetwork> {
        let (lat_mult, inv_bw) = if faults.is_active() {
            faults.link_mult(src, dst, now)
        } else {
            (1.0, 1.0)
        };
        let bw_scale = if block {
            self.cost.shmem_block_bw_scale
        } else {
            1.0
        };
        let wire = if src != dst && faults.has_kills() && faults.pair_dead(src, dst, now) {
            let healed = self.healed_routes(&faults.dead_pairs(now));
            let (route, relays) = healed.route(src, dst)?;
            // Each intermediate device store-and-forwards the message:
            // it pays a peer-forwarding latency on top of the wire time.
            us(self.cost.p2p_latency_us) * relays as u64
                + self.charge_route(route, bytes, now, bw_scale, inv_bw)
        } else {
            self.dev_charge(src, dst, bytes, now, bw_scale, inv_bw)
        };
        let raw =
            us(self.cost.shmem_put_us) * inv_bw + wire + us(self.cost.shmem_signal_us) * lat_mult;
        // Per-route FIFO: clamp so this delivery never completes before an
        // earlier one on the same route. A no-op unless a fault window
        // actually reordered completions, so fault-free timings are
        // untouched.
        let mut fifo = self.fifo.lock();
        let done = (now + raw).max(fifo.get(&(src, dst)).copied().unwrap_or(SimTime::ZERO));
        fifo.insert((src, dst), done);
        Ok(done.since(now))
    }

    /// Whether `src` can currently reach `dst` (directly or rerouted),
    /// and over how many links. Runners consult this before relying on a
    /// neighbor so partitions surface as structured diagnostics.
    pub fn route_status(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        now: SimTime,
    ) -> Result<usize, PartitionedNetwork> {
        if src == dst || !faults.has_kills() || !faults.pair_dead(src, dst, now) {
            return Ok(self.topo.route_hops(src, dst));
        }
        let healed = self.healed_routes(&faults.dead_pairs(now));
        healed.route(src, dst).map(|(r, _)| r.len())
    }

    /// The healed route table for a dead-pair set (computed once per set
    /// per machine, then shared).
    fn healed_routes(&self, dead: &[(usize, usize)]) -> Arc<HealedRoutes> {
        let mut cache = self.healed.lock();
        if let Some(t) = cache.get(dead) {
            return Arc::clone(t);
        }
        let t = Arc::new(HealedRoutes::compute(&self.topo, dead));
        cache.insert(dead.to_vec(), Arc::clone(&t));
        t
    }

    fn dev_charge(
        &self,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        self.charge_scaled(
            Endpoint::Dev(DevId(src)),
            Endpoint::Dev(DevId(dst)),
            bytes,
            now,
            bw_scale,
            inv_bw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport(kind: TopologyKind, n: usize) -> Transport {
        let cost = CostModel::a100_hgx();
        Transport::new(Topology::build(kind, n, &cost), cost)
    }

    #[test]
    fn all_to_all_uncontended_matches_flat_model() {
        let c = CostModel::a100_hgx();
        let now = SimTime(12345);
        for bytes in [0u64, 8, 4096, 1 << 20] {
            // Fresh graph per size: charges reserve the links, so repeats on
            // one pair at the same instant would (correctly) queue.
            let t = transport(TopologyKind::NvlinkAllToAll, 8);
            assert_eq!(t.shmem_put(0, 5, bytes, now), c.shmem_put(bytes));
            assert_eq!(
                t.shmem_put_block(1, 2, bytes, now),
                c.shmem_put_block(bytes)
            );
            assert_eq!(t.p2p(DevId(3), DevId(4), bytes, now), c.p2p_copy(bytes));
            assert_eq!(t.host_copy(DevId(6), bytes, now), c.pcie_copy(bytes));
        }
        let t = transport(TopologyKind::NvlinkAllToAll, 8);
        assert_eq!(t.shmem_iput(0, 1, 1024, 8, now), c.shmem_iput(1024, 8));
        assert_eq!(
            t.shmem_p_mapped(2, 3, 256, 1024, now),
            c.shmem_p_mapped(256, 1024)
        );
    }

    fn p2p_usize(t: &Transport, s: usize, d: usize, bytes: u64, now: SimTime) -> SimDur {
        t.p2p(DevId(s), DevId(d), bytes, now)
    }

    #[test]
    fn all_to_all_distinct_pairs_do_not_contend() {
        let t = transport(TopologyKind::NvlinkAllToAll, 8);
        let now = SimTime(0);
        let solo = t.shmem_put(0, 1, 1 << 22, now);
        // Other pairs — including the reverse direction — firing at the
        // same instant see no queueing: every ordered pair has its own link.
        t.shmem_put(2, 3, 1 << 22, now);
        t.shmem_put(4, 5, 1 << 22, now);
        assert_eq!(t.shmem_put(1, 0, 1 << 22, now), solo);
    }

    #[test]
    fn same_pair_overlap_queues() {
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let now = SimTime(0);
        let first = t.shmem_put(0, 1, 1 << 22, now);
        let second = t.shmem_put(0, 1, 1 << 22, now);
        // The second transfer waits for the first to drain the link.
        let c = CostModel::a100_hgx();
        let wire = c.shmem_put(1 << 22) - c.shmem_put(0);
        assert_eq!(second, first + wire);
    }

    #[test]
    fn pcie_tree_shares_bridge_uplinks() {
        let t = transport(TopologyKind::PcieTree, 8);
        let now = SimTime(0);
        // Cross-bridge pairs (0->4) and (1->5) share both bridge uplinks.
        let solo = p2p_usize(&t, 0, 4, 1 << 22, now);
        let contended = p2p_usize(&t, 1, 5, 1 << 22, now);
        assert!(
            contended > solo,
            "second cross-bridge flow must queue: {contended} vs {solo}"
        );
    }

    #[test]
    fn pcie_same_bridge_pairs_contend_on_switch() {
        let t = transport(TopologyKind::PcieTree, 8);
        let now = SimTime(0);
        // Same-bridge disjoint pairs share only the local bridge switch.
        let a = p2p_usize(&t, 0, 1, 1 << 22, now);
        let b = p2p_usize(&t, 2, 3, 1 << 22, now);
        assert!(b > a, "bridge switch is a shared hop under one bridge");
    }

    #[test]
    fn ring_distant_pairs_cost_more_than_neighbors() {
        let t = transport(TopologyKind::NvlinkRing, 8);
        let near = t.shmem_put(0, 1, 1 << 20, SimTime(0));
        let far = t.shmem_put(2, 6, 1 << 20, SimTime(0));
        assert!(far > near, "multi-hop ring route must cost more");
        assert_eq!(t.topology().route_hops(2, 6), 4);
        assert_eq!(t.topology().route_hops(0, 7), 1, "wraparound is one hop");
    }

    #[test]
    fn two_node_cross_traffic_funnels_through_nics() {
        let t = transport(TopologyKind::TwoNode, 8);
        let now = SimTime(0);
        let intra = t.shmem_put(0, 1, 1 << 20, now);
        let cross = t.shmem_put(0, 4, 1 << 20, now);
        assert!(cross > intra * 2, "NIC path is slower than NVLink");
        let again = t.shmem_put(1, 5, 1 << 20, now);
        assert!(again > cross, "all cross-node flows share the NICs");
    }

    #[test]
    fn ring_order_is_natural_for_all_presets() {
        for kind in TopologyKind::ALL {
            for n in [1usize, 2, 4, 8] {
                let cost = CostModel::a100_hgx();
                let topo = Topology::build(kind, n, &cost);
                assert_eq!(
                    topo.ring_order(),
                    (0..n).collect::<Vec<_>>().as_slice(),
                    "{kind:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn bcast_order_puts_near_devices_first() {
        let cost = CostModel::a100_hgx();
        let topo = Topology::build(TopologyKind::TwoNode, 8, &cost);
        let order = topo.bcast_order(0);
        assert_eq!(order[0], 0);
        let cross_pos = order.iter().position(|&d| d == 4).unwrap();
        for intra in 1..4 {
            let p = order.iter().position(|&d| d == intra).unwrap();
            assert!(p < cross_pos, "intra-node device {intra} before cross-node");
        }
    }

    #[test]
    fn all_routes_exist_and_signal_rides_route() {
        for kind in TopologyKind::ALL {
            let t = transport(kind, 8);
            for s in 0..8 {
                for d in 0..8 {
                    if s != d {
                        assert!(t.topology().route_hops(s, d) >= 1, "{kind:?} {s}->{d}");
                    }
                }
            }
            // A zero-byte signal behind a bulk put on the same route queues.
            let now = SimTime(0);
            let put = t.shmem_put(0, 1, 1 << 22, now);
            let sig = t.shmem_signal(0, 1, now);
            let c = CostModel::a100_hgx();
            let wire_nvl = c.shmem_put(1 << 22) - c.shmem_put(0);
            assert!(
                sig >= wire_nvl,
                "{kind:?}: signal must not overtake the put ({sig} vs {put})"
            );
        }
    }

    #[test]
    fn killed_pair_reroutes_and_partition_surfaces() {
        use sim_des::{FaultPlan, LinkFault};
        let c = CostModel::a100_hgx();
        let bytes = 1 << 20;
        // 4 devices: killing {0,1} reroutes over a 2-link relay.
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let st =
            sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(0, 1, SimTime(0))));
        let healed = t
            .try_put_signal_delivery(&st, 0, 1, bytes, SimTime(0), false)
            .unwrap();
        assert!(
            healed > c.shmem_put(bytes) + c.shmem_signal(),
            "relayed route must cost more than the direct link"
        );
        assert_eq!(t.route_status(&st, 0, 1, SimTime(0)).unwrap(), 2);
        // Other pairs are untouched — exact flat-model equality holds.
        assert_eq!(
            t.try_put_signal_delivery(&st, 2, 3, bytes, SimTime(0), false)
                .unwrap(),
            c.shmem_put(bytes) + c.shmem_signal()
        );
        // Before the kill activates, the direct route still serves.
        let st_late = sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(
            0,
            1,
            SimTime(1000),
        )));
        assert_eq!(
            t.route_status(&st_late, 0, 1, SimTime(0)).unwrap(),
            t.topology().route_hops(0, 1)
        );
        // 2 devices: killing the only pair partitions the network.
        let t2 = transport(TopologyKind::NvlinkAllToAll, 2);
        let st2 =
            sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(0, 1, SimTime(0))));
        let err = t2
            .try_put_signal_delivery(&st2, 0, 1, bytes, SimTime(0), false)
            .unwrap_err();
        assert!(err.to_string().contains("PartitionedNetwork"));
        assert!(t2.route_status(&st2, 1, 0, SimTime(0)).is_err());
    }

    #[test]
    fn faulted_delivery_matches_flat_formula_uncontended() {
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let c = CostModel::a100_hgx();
        let healthy = FaultState::none();
        let bytes = 1 << 20;
        let dur = t.put_signal_delivery(&healthy, 0, 1, bytes, SimTime(0), false);
        assert_eq!(dur, c.shmem_put(bytes) + c.shmem_signal());
        let dur_b = t.put_signal_delivery(&healthy, 2, 3, bytes, SimTime(0), true);
        assert_eq!(dur_b, c.shmem_put_block(bytes) + c.shmem_signal());
    }

    #[test]
    fn partition_hints_are_contiguous_ring_chunks() {
        for kind in TopologyKind::ALL {
            let t = transport(kind, 8);
            let topo = t.topology();
            for shards in [1, 2, 4, 8] {
                let plan = topo.partition_hints(shards);
                assert_eq!(plan.len(), 8);
                // Walking the ring order, shard ids are non-decreasing:
                // chunks are contiguous in ring position.
                let along_ring: Vec<usize> = topo.ring_order().iter().map(|&d| plan[d]).collect();
                assert!(
                    along_ring.windows(2).all(|w| w[0] <= w[1]),
                    "{kind:?} shards={shards}: non-contiguous plan {along_ring:?}"
                );
                assert!(plan.iter().all(|&s| s < shards));
                // Every shard gets at least one device when shards <= n.
                for s in 0..shards {
                    assert!(plan.contains(&s), "{kind:?}: shard {s} empty");
                }
            }
        }
    }

    #[test]
    fn forward_latency_skips_the_first_hop() {
        // All-to-all: every device pair is one direct link — no forwarding.
        let aa = transport(TopologyKind::NvlinkAllToAll, 8);
        assert_eq!(aa.topology().route_forward_latency(0, 5), SimDur::ZERO);
        assert_eq!(aa.topology().route_forward_latency(3, 3), SimDur::ZERO);
        // PCIe tree: multi-hop routes pay latency for every hop after the
        // first, consistent with the transfer-charge model.
        let pt = transport(TopologyKind::PcieTree, 8);
        let topo = pt.topology();
        let (mut multi, mut zero) = (0, 0);
        for s in 0..8 {
            for d in 0..8 {
                if s == d {
                    continue;
                }
                let fwd = topo.route_forward_latency(s, d);
                if topo.route_hops(s, d) > 1 {
                    assert!(!fwd.is_zero(), "{s}->{d} multi-hop but free");
                    multi += 1;
                } else {
                    assert!(fwd.is_zero());
                    zero += 1;
                }
            }
        }
        assert!(multi > 0, "pcie tree should have multi-hop routes");
        let _ = zero;
    }

    #[test]
    fn shard_lookahead_is_positive_and_monotone_in_base() {
        for kind in TopologyKind::ALL {
            let t = transport(kind, 8);
            let c = CostModel::a100_hgx();
            for shards in [1, 2, 4] {
                let plan = t.partition_hints(shards);
                let look = t.shard_lookahead(&plan);
                assert!(
                    look >= c.shmem_signal() && !look.is_zero(),
                    "{kind:?} shards={shards}: lookahead {look} below base"
                );
            }
            // One shard has no cross pairs: lookahead is exactly the base.
            let single = t.partition_hints(1);
            assert_eq!(t.shard_lookahead(&single), c.shmem_signal());
        }
    }
}
