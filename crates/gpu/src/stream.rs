//! CUDA-like streams: in-order queues of device operations.
//!
//! Each stream is backed by a dedicated agent that dequeues and executes
//! operations one at a time (in-order within the stream, concurrent across
//! streams — exactly CUDA's semantics). The host communicates with the
//! stream through a doorbell flag and awaits completion through a
//! completion-counter flag.

use crate::kernel::{KernelBody, KernelCtx};
use crate::machine::Machine;
use crate::mem::{Buf, DevId};
use sim_des::lock::Mutex;
use sim_des::{Category, Cmp, Flag, SignalOp};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One queued stream operation.
pub(crate) enum StreamOp {
    /// A discrete kernel: its body runs on the stream agent.
    Kernel {
        /// Kernel name for traces.
        name: String,
        /// Body executed with a [`KernelCtx`].
        body: KernelBody,
    },
    /// An asynchronous memory copy; kind inferred from buffer places.
    Memcpy {
        dst: Buf,
        dst_off: usize,
        src: Buf,
        src_off: usize,
        len: usize,
    },
    /// Set `flag` to `value` when reached (cudaEventRecord).
    RecordEvent { flag: Flag, value: u64 },
    /// Stall the stream until `flag >= value` (cudaStreamWaitEvent).
    WaitEvent { flag: Flag, value: u64 },
    /// Terminate the stream agent (machine teardown).
    Shutdown,
}

pub(crate) struct StreamShared {
    pub(crate) dev: DevId,
    pub(crate) name: String,
    pub(crate) ops: Mutex<VecDeque<StreamOp>>,
    /// Total enqueued ops (signaled with Add 1 per enqueue).
    pub(crate) doorbell: Flag,
    /// Total completed ops (signaled by the stream agent).
    pub(crate) completed: Flag,
    /// Mirror of the doorbell value, readable without the engine.
    pub(crate) enqueued: AtomicU64,
}

/// Handle to a simulated CUDA stream.
#[derive(Clone)]
pub struct Stream {
    pub(crate) shared: Arc<StreamShared>,
}

impl Stream {
    /// The device this stream issues work to.
    pub fn device(&self) -> DevId {
        self.shared.dev
    }

    /// The stream's debug name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Number of operations enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.shared.enqueued.load(Ordering::SeqCst)
    }
}

/// The body of the per-stream agent. Spawned by `HostCtx::create_stream`.
pub(crate) fn stream_agent_main(
    machine: Machine,
    shared: Arc<StreamShared>,
) -> impl FnOnce(&mut sim_des::AgentCtx) + Send + 'static {
    move |ctx| {
        let cost = machine.cost().clone();
        let mut processed: u64 = 0;
        loop {
            ctx.wait_flag(shared.doorbell, Cmp::Gt, processed);
            let op = shared
                .ops
                .lock()
                .pop_front()
                .expect("doorbell rang with empty queue");
            processed += 1;
            match op {
                StreamOp::Shutdown => break,
                StreamOp::Kernel { name, body } => {
                    ctx.busy(
                        Category::Launch,
                        format!("kstart {name}"),
                        cost.kernel_launch_device(),
                    );
                    let mut kctx = KernelCtx::discrete(ctx, machine.clone(), shared.dev, &name);
                    body(&mut kctx);
                    ctx.signal(shared.completed, SignalOp::Add, 1);
                }
                StreamOp::Memcpy {
                    dst,
                    dst_off,
                    src,
                    src_off,
                    len,
                } => {
                    let bytes = (len * std::mem::size_of::<f64>()) as u64;
                    let (dur, label) =
                        machine
                            .transport()
                            .memcpy(src.place(), dst.place(), bytes, ctx.now());
                    ctx.busy(Category::Comm, format!("{label} {len}el"), dur);
                    dst.copy_from(dst_off, &src, src_off, len);
                    ctx.signal(shared.completed, SignalOp::Add, 1);
                }
                StreamOp::RecordEvent { flag, value } => {
                    ctx.busy(Category::Api, "event record", cost.event_op());
                    ctx.signal(flag, SignalOp::Set, value);
                    ctx.signal(shared.completed, SignalOp::Add, 1);
                }
                StreamOp::WaitEvent { flag, value } => {
                    ctx.wait_flag_traced(flag, Cmp::Ge, value, Category::Sync, "stream wait event");
                    ctx.signal(shared.completed, SignalOp::Add, 1);
                }
            }
        }
    }
}
