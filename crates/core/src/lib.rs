//! # cpufree-core — the CPU-Free multi-GPU execution model
//!
//! The paper's primary contribution as a reusable library. The model removes
//! the CPU from the control path of multi-GPU applications by combining:
//!
//! 1. **Persistent kernels** — the time loop lives on the device; the host
//!    launches exactly once ([`launch_cpu_free`], [`persistent_loop`]);
//! 2. **Device-side synchronization** — cooperative-groups `grid.sync()`
//!    within a device, NVSHMEM flag semaphores between devices (§4.1.1;
//!    see `nvshmem_sim::ShmemCtx::signal_wait_until`);
//! 3. **Thread-block specialization** — communication vs. computation block
//!    groups with the §4.1.2 proportional work allocation
//!    ([`TbAllocation`]);
//! 4. **GPU-initiated data movement** — halo exchange issued from inside
//!    the kernel (`nvshmem_sim::ShmemCtx::putmem_signal_nbi`).
//!
//! The "alternative design" of two co-resident kernels in separate streams
//! is provided by [`launch_cpu_free_dual`] with [`LocalRendezvous`].
//! [`RunStats`] measures what the paper's figures report — per-iteration
//! time, exposed communication, overlap ratio — from the simulation trace.

#![warn(missing_docs)]

mod alloc;
mod launch;
mod stats;
mod watchdog;

pub use alloc::TbAllocation;
pub use launch::{launch_cpu_free, launch_cpu_free_dual, persistent_loop, LocalRendezvous};
pub use stats::RunStats;
pub use watchdog::{spawn_watchdog, WatchdogSpec};
