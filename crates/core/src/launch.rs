//! The CPU-Free launch blueprint (§3).
//!
//! In the CPU-Free model the host's entire job is the *initial* launch: one
//! persistent cooperative kernel per device, after which devices synchronize
//! and communicate autonomously. [`launch_cpu_free`] encodes exactly that —
//! each host rank launches once and waits — and the two-kernel
//! [`launch_cpu_free_dual`] encodes the paper's "alternative design" of
//! co-resident boundary/inner kernels in separate streams synchronized by
//! local device flags.

use gpu_sim::{BlockGroup, DevId, KernelCtx, Machine};
use sim_des::{Category, Cmp, Flag, SignalOp, SimError, SimTime};

/// Launch a CPU-Free application: one persistent cooperative kernel per
/// device, built by `groups_for_pe(pe)`; the host does nothing else.
///
/// Returns the end-to-end virtual time of the run.
pub fn launch_cpu_free<F>(
    machine: &Machine,
    name: &str,
    threads_per_block: u32,
    groups_for_pe: F,
) -> Result<SimTime, SimError>
where
    F: Fn(usize) -> Vec<BlockGroup> + Send + Sync + 'static,
{
    let groups_for_pe = std::sync::Arc::new(groups_for_pe);
    for pe in 0..machine.num_devices() {
        let name = name.to_string();
        let gfp = std::sync::Arc::clone(&groups_for_pe);
        machine.spawn_host(format!("rank{pe}"), move |host| {
            let groups = gfp(pe);
            // The single kernel launch — the only CPU involvement.
            let kernel = host.launch_cooperative(DevId(pe), &name, threads_per_block, groups);
            host.wait_cooperative(&kernel);
        });
    }
    machine.run()
}

/// Pairwise rendezvous between two co-resident kernels on the same device,
/// implemented — as the paper describes — by busy-waiting on flags in local
/// device memory.
#[derive(Clone, Copy)]
pub struct LocalRendezvous {
    a: Flag,
    b: Flag,
}

impl LocalRendezvous {
    /// Allocate the flag pair on `machine` (conceptually in device memory).
    pub fn new(machine: &Machine) -> LocalRendezvous {
        LocalRendezvous {
            a: machine.flag(0),
            b: machine.flag(0),
        }
    }

    /// Called by kernel "A" at the end of iteration `iter` (1-based).
    pub fn sync_as_a(&self, ctx: &mut KernelCtx<'_>, iter: u64) {
        self.sync(ctx, self.a, self.b, iter);
    }

    /// Called by kernel "B" at the end of iteration `iter` (1-based).
    pub fn sync_as_b(&self, ctx: &mut KernelCtx<'_>, iter: u64) {
        self.sync(ctx, self.b, self.a, iter);
    }

    fn sync(&self, ctx: &mut KernelCtx<'_>, mine: Flag, other: Flag, iter: u64) {
        let poll = ctx.cost().shmem_poll();
        let agent = ctx.agent_mut();
        let start = agent.now();
        agent.signal(mine, SignalOp::Set, iter);
        agent.wait_flag(other, Cmp::Ge, iter);
        agent.advance(poll);
        let end = agent.now();
        agent.record(
            Category::Sync,
            format!("local rendezvous it{iter}"),
            start,
            end,
        );
    }
}

/// The paper's alternative design (§4): two co-resident persistent kernels
/// per device — one for communication/boundary, one for inner compute —
/// launched in separate streams and synchronized per iteration through a
/// [`LocalRendezvous`] in device memory.
///
/// `comm_for_pe(pe, rv)` and `comp_for_pe(pe, rv)` build the two kernels'
/// block groups; both receive the device's rendezvous so their bodies can
/// call [`LocalRendezvous::sync_as_a`]/[`sync_as_b`](LocalRendezvous::sync_as_b)
/// each iteration.
pub fn launch_cpu_free_dual<FA, FB>(
    machine: &Machine,
    name: &str,
    threads_per_block: u32,
    comm_for_pe: FA,
    comp_for_pe: FB,
) -> Result<SimTime, SimError>
where
    FA: Fn(usize, LocalRendezvous) -> Vec<BlockGroup> + Send + Sync + 'static,
    FB: Fn(usize, LocalRendezvous) -> Vec<BlockGroup> + Send + Sync + 'static,
{
    let comm_for_pe = std::sync::Arc::new(comm_for_pe);
    let comp_for_pe = std::sync::Arc::new(comp_for_pe);
    for pe in 0..machine.num_devices() {
        let name = name.to_string();
        let fa = std::sync::Arc::clone(&comm_for_pe);
        let fb = std::sync::Arc::clone(&comp_for_pe);
        let rv = LocalRendezvous::new(machine);
        machine.spawn_host(format!("rank{pe}"), move |host| {
            let comm = host.launch_cooperative(
                DevId(pe),
                format!("{name}.comm"),
                threads_per_block,
                fa(pe, rv),
            );
            let comp = host.launch_cooperative(
                DevId(pe),
                format!("{name}.comp"),
                threads_per_block,
                fb(pe, rv),
            );
            host.wait_cooperative(&comm);
            host.wait_cooperative(&comp);
        });
    }
    machine.run()
}

/// Run the persistent time loop: `body(iter, ctx)` for `iterations` steps
/// (1-based), with a `grid.sync()` separating steps — the shape of the
/// paper's Listing 4.1.
pub fn persistent_loop(
    ctx: &mut KernelCtx<'_>,
    iterations: u64,
    mut body: impl FnMut(u64, &mut KernelCtx<'_>),
) {
    for iter in 1..=iterations {
        body(iter, ctx);
        ctx.grid_sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{CostModel, ExecMode};
    use nvshmem_sim::{ShmemCtx, ShmemWorld};
    use sim_des::us;

    #[test]
    fn cpu_free_launch_runs_one_kernel_per_device() {
        let machine = Machine::new(4, CostModel::a100_hgx(), ExecMode::Full);
        let counter = machine.flag(0);
        let end = launch_cpu_free(&machine, "app", 1024, move |_pe| {
            vec![BlockGroup::new("solo", 1, move |k| {
                k.busy(Category::Compute, "w", us(5.0));
                k.agent_mut().signal(counter, SignalOp::Add, 1);
            })]
        })
        .unwrap();
        assert_eq!(machine.engine().flag_value(counter), 4);
        assert!(end.as_micros_f64() >= 5.0);
        // No per-iteration host activity: exactly one Launch pair per device
        // from the host side plus the device kstart spans.
        let launches = machine
            .trace()
            .filter(|s| s.category == Category::Launch)
            .len();
        assert_eq!(launches, 8, "host launch + device start per device");
    }

    #[test]
    fn persistent_loop_iterates_with_grid_sync() {
        let machine = Machine::new(1, CostModel::a100_hgx(), ExecMode::Full);
        let probe = machine.flag(0);
        launch_cpu_free(&machine, "loop", 1024, move |_pe| {
            vec![
                BlockGroup::new("g0", 1, move |k| {
                    persistent_loop(k, 10, |_it, k| {
                        k.busy(Category::Compute, "w", us(1.0));
                        k.agent_mut().signal(probe, SignalOp::Add, 1);
                    });
                }),
                BlockGroup::new("g1", 1, move |k| {
                    persistent_loop(k, 10, |_it, k| {
                        k.busy(Category::Compute, "w", us(2.0));
                    });
                }),
            ]
        })
        .unwrap();
        assert_eq!(machine.engine().flag_value(probe), 10);
    }

    #[test]
    fn dual_kernel_design_stays_in_lockstep() {
        let machine = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
        let iters = 5u64;
        let end = launch_cpu_free_dual(
            &machine,
            "dual",
            1024,
            move |_pe, rv| {
                vec![BlockGroup::new("comm", 1, move |k| {
                    for it in 1..=iters {
                        k.busy(Category::Comm, "halo", us(1.0));
                        rv.sync_as_a(k, it);
                    }
                })]
            },
            move |_pe, rv| {
                vec![BlockGroup::new("comp", 1, move |k| {
                    for it in 1..=iters {
                        k.busy(Category::Compute, "inner", us(4.0));
                        rv.sync_as_b(k, it);
                    }
                })]
            },
        )
        .unwrap();
        // Each iteration gated by the slower (4 µs) kernel, plus launch
        // latencies and rendezvous poll costs.
        assert!(end.as_micros_f64() >= 20.0);
        assert!(end.as_micros_f64() < 80.0);
    }

    #[test]
    fn cpu_free_app_with_shmem_halo_protocol() {
        // A ring of PEs exchanging a token per iteration — the §4.1.1
        // semaphore over the CPU-Free launch blueprint. Verifies the whole
        // stack composes: launch_cpu_free + NVSHMEM put-with-signal.
        let n = 4usize;
        let iters = 8u64;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let halo = world.malloc("halo", 1);
        let sig = world.signal(0);
        let w = world.clone();
        let halo_in = halo.clone();
        let sig_in = sig.clone();
        launch_cpu_free(&machine, "ring", 1024, move |pe| {
            let w = w.clone();
            let halo = halo_in.clone();
            let sig = sig_in.clone();
            vec![BlockGroup::new("comm", 1, move |k| {
                let mut sh = ShmemCtx::new(&w, k);
                let right = (pe + 1) % n;
                let src = k.machine().alloc(DevId(pe), "tok", 1);
                for it in 1..=iters {
                    src.set(0, (pe as f64) + (it as f64) * 100.0);
                    sh.putmem_signal_nbi(k, &halo, 0, &src, 0, 1, &sig, SignalOp::Set, it, right);
                    sh.signal_wait_until(k, &sig, Cmp::Ge, it);
                }
            })]
        })
        .unwrap();
        // Every PE holds its left neighbor's final-iteration token, and
        // every PE's signal reached the final iteration number.
        for pe in 0..n {
            let left = (pe + n - 1) % n;
            let expected = left as f64 + (iters as f64) * 100.0;
            assert_eq!(halo.local(pe).get(0), expected, "pe {pe}");
            assert_eq!(machine.engine().flag_value(sig.flag(pe)), iters);
        }
    }
}
