//! Thread-block specialization and work allocation (§3.1.3, §4.1.2).
//!
//! A persistent kernel has no streams; concurrency comes from specializing
//! thread blocks. The paper's allocation formula splits the device's
//! co-resident blocks proportionally to the boundary vs. inner workload:
//!
//! ```text
//! boundary_TB_num = TB_total * boundary_size / (inner_size + 2*boundary_size)
//! inner_TB_num    = TB_total - 2 * boundary_TB_num
//! ```
//!
//! Proportional splitting matters for small and unbalanced 3D domains, which
//! are otherwise bound by boundary computation + communication time.

/// How a persistent kernel's thread blocks are split between the two
/// boundary (communication) groups and the inner-domain group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbAllocation {
    /// Blocks reserved for EACH of the two boundary/communication groups.
    pub boundary_tbs: u64,
    /// Blocks computing the inner domain.
    pub inner_tbs: u64,
    /// Total co-resident blocks (== `2 * boundary_tbs + inner_tbs`).
    pub total: u64,
}

impl TbAllocation {
    /// Apply the paper's §4.1.2 formula.
    ///
    /// `total` is the number of co-resident thread blocks available for the
    /// chosen block size; `inner_size` and `boundary_size` are workload
    /// element counts (the boundary counted once — there are two symmetric
    /// boundary regions).
    ///
    /// Every group is guaranteed at least one block, so degenerate domains
    /// still make progress; requires `total >= 3`.
    pub fn proportional(total: u64, inner_size: u64, boundary_size: u64) -> TbAllocation {
        assert!(
            total >= 3,
            "need at least 3 co-resident blocks (2 comm + 1 inner), got {total}"
        );
        let denom = inner_size + 2 * boundary_size;
        // Round to nearest: flooring starves wide boundary layers (a
        // single block per 512x512 plane bottlenecks the whole kernel).
        let mut boundary = (total * boundary_size + denom / 2)
            .checked_div(denom)
            .unwrap_or(1);
        boundary = boundary.clamp(1, (total - 1) / 2);
        TbAllocation {
            boundary_tbs: boundary,
            inner_tbs: total - 2 * boundary,
            total,
        }
    }

    /// The naive fixed split the paper's Listing 4.1 sketches: exactly one
    /// block per boundary group. Used as the ablation baseline against
    /// [`TbAllocation::proportional`].
    pub fn fixed_two(total: u64) -> TbAllocation {
        assert!(total >= 3, "need at least 3 blocks, got {total}");
        TbAllocation {
            boundary_tbs: 1,
            inner_tbs: total - 2,
            total,
        }
    }

    /// Fraction of device resources owned by ONE boundary group.
    pub fn boundary_fraction(&self) -> f64 {
        self.boundary_tbs as f64 / self.total as f64
    }

    /// Fraction of device resources owned by the inner group.
    pub fn inner_fraction(&self) -> f64 {
        self.inner_tbs as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper() {
        // TB_total=108, boundary=1 row of 2048, inner=2046 rows of 2048:
        // boundary_TB = 108 * 2048 / (2046*2048 + 2*2048) = 108/2048... tiny -> 1.
        let a = TbAllocation::proportional(108, 2046 * 2048, 2048);
        assert_eq!(a.boundary_tbs, 1);
        assert_eq!(a.inner_tbs, 106);
    }

    #[test]
    fn balanced_small_domain_gets_more_boundary_blocks() {
        // Inner comparable to boundary: split approaches a third each.
        let a = TbAllocation::proportional(108, 1000, 1000);
        assert!(a.boundary_tbs >= 30, "{a:?}");
        assert_eq!(a.total, 2 * a.boundary_tbs + a.inner_tbs);
    }

    #[test]
    fn conservation_and_minimums_hold() {
        for total in [3u64, 4, 7, 108, 216] {
            for inner in [0u64, 1, 100, 1 << 20] {
                for boundary in [0u64, 1, 50, 1 << 16] {
                    let a = TbAllocation::proportional(total, inner, boundary);
                    assert_eq!(a.total, total);
                    assert_eq!(a.inner_tbs + 2 * a.boundary_tbs, total);
                    assert!(a.boundary_tbs >= 1);
                    assert!(a.inner_tbs >= 1);
                }
            }
        }
    }

    #[test]
    fn zero_workload_degenerates_gracefully() {
        let a = TbAllocation::proportional(10, 0, 0);
        assert_eq!(a.boundary_tbs, 1);
        assert_eq!(a.inner_tbs, 8);
    }

    #[test]
    fn fixed_two_is_one_block_per_boundary() {
        let a = TbAllocation::fixed_two(108);
        assert_eq!(a.boundary_tbs, 1);
        assert_eq!(a.inner_tbs, 106);
    }

    #[test]
    fn fractions_sum_to_one() {
        let a = TbAllocation::proportional(108, 500, 500);
        let sum = 2.0 * a.boundary_fraction() + a.inner_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_blocks_rejected() {
        TbAllocation::proportional(2, 10, 10);
    }
}
