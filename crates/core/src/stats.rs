//! Run statistics extracted from simulation traces.
//!
//! The paper's evaluation reports per-iteration execution time, pure
//! communication/synchronization overheads (Fig 2.2a) and the communication
//! overlap ratio (Fig 2.2b). All of those are *measurements over the span
//! trace*, computed here.

use sim_des::{Category, SimDur, Trace};

/// Aggregated measurements of one application run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// End-to-end virtual execution time.
    pub total: SimDur,
    /// `total / iterations`.
    pub per_iter: SimDur,
    /// Union length of communication activity (transfers).
    pub comm_busy: SimDur,
    /// Union length of synchronization waits (stream syncs, signal waits,
    /// barriers, grid syncs).
    pub sync_busy: SimDur,
    /// Union length of compute activity.
    pub compute_busy: SimDur,
    /// Raw sum of kernel-launch latency spans.
    pub launch_total: SimDur,
    /// Raw sum of host API overhead spans.
    pub api_total: SimDur,
    /// Fraction of communication+synchronization busy time that coexists
    /// with compute — the paper's "overlapped" portion.
    pub comm_overlap_ratio: f64,
    /// Communication + synchronization busy time not hidden by compute.
    pub exposed_comm: SimDur,
}

impl RunStats {
    /// Compute statistics from a trace and the run's end-to-end time.
    pub fn from_trace(trace: &Trace, total: SimDur, iterations: u64) -> RunStats {
        let comm_busy = trace.busy(Category::Comm);
        let sync_busy = trace.busy(Category::Sync);
        let compute_busy = trace.busy(Category::Compute);
        // "Communication" in the paper's overlap discussion = everything on
        // the communication path: transfers plus the waits that serialize
        // them. Merge both categories' intervals by measuring them jointly.
        let comm_like = trace.filter(|s| matches!(s.category, Category::Comm | Category::Sync));
        // Re-tag to one category so `busy` unions across both.
        let mut joint = sim_des::Trace::with_pool(trace.pool().clone());
        for s in comm_like.spans() {
            let mut s = *s;
            s.category = Category::Comm;
            joint.push(s);
        }
        let comm_sync_busy = joint.busy(Category::Comm);
        for s in trace.spans() {
            if s.category == Category::Compute {
                joint.push(*s);
            }
        }
        let overlapped = joint.overlap(Category::Comm, Category::Compute);
        let ratio = if comm_sync_busy.as_nanos() == 0 {
            0.0
        } else {
            overlapped.as_nanos() as f64 / comm_sync_busy.as_nanos() as f64
        };
        RunStats {
            total,
            per_iter: if iterations == 0 {
                SimDur::ZERO
            } else {
                total / iterations
            },
            comm_busy,
            sync_busy,
            compute_busy,
            launch_total: trace.total(Category::Launch),
            api_total: trace.total(Category::Api),
            comm_overlap_ratio: ratio,
            exposed_comm: comm_sync_busy.saturating_sub(overlapped),
        }
    }

    /// The paper's speedup formula: `(T_baseline - T_ours) / T_baseline`,
    /// in percent.
    pub fn speedup_pct(baseline: SimDur, ours: SimDur) -> f64 {
        if baseline.as_nanos() == 0 {
            return 0.0;
        }
        (baseline.as_nanos() as f64 - ours.as_nanos() as f64) / baseline.as_nanos() as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_des::{us, AgentId, SimTime, TraceSpan};

    fn span(t: &Trace, cat: Category, a: f64, b: f64) -> TraceSpan {
        TraceSpan {
            agent: AgentId(0),
            agent_name: t.intern("t"),
            start: SimTime::ZERO + us(a),
            end: SimTime::ZERO + us(b),
            category: cat,
            label: sim_des::Sym::EMPTY,
        }
    }

    #[test]
    fn overlap_ratio_counts_sync_as_comm_path() {
        let mut t = Trace::new();
        t.push(span(&t, Category::Comm, 0.0, 10.0));
        t.push(span(&t, Category::Sync, 10.0, 20.0));
        t.push(span(&t, Category::Compute, 5.0, 15.0));
        let s = RunStats::from_trace(&t, us(20.0), 1);
        // comm+sync busy = 20 µs, overlapped with compute = 10 µs.
        assert!((s.comm_overlap_ratio - 0.5).abs() < 1e-9, "{s:?}");
        assert_eq!(s.exposed_comm, us(10.0));
    }

    #[test]
    fn per_iter_divides_total() {
        let t = Trace::new();
        let s = RunStats::from_trace(&t, us(100.0), 10);
        assert_eq!(s.per_iter, us(10.0));
        let s0 = RunStats::from_trace(&t, us(100.0), 0);
        assert_eq!(s0.per_iter, SimDur::ZERO);
    }

    #[test]
    fn speedup_formula_matches_paper() {
        assert!((RunStats::speedup_pct(us(100.0), us(4.0)) - 96.0).abs() < 1e-9);
        assert!((RunStats::speedup_pct(us(100.0), us(100.0))).abs() < 1e-9);
        assert_eq!(RunStats::speedup_pct(SimDur::ZERO, us(1.0)), 0.0);
    }

    #[test]
    fn empty_trace_yields_zero_ratio() {
        let t = Trace::new();
        let s = RunStats::from_trace(&t, us(1.0), 1);
        assert_eq!(s.comm_overlap_ratio, 0.0);
        assert_eq!(s.comm_busy, SimDur::ZERO);
    }
}
