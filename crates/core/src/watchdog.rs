//! A per-machine watchdog agent that converts silent hangs into attributed
//! [`SimError::Timeout`] diagnoses.
//!
//! CPU-Free persistent kernels synchronize entirely on the device; when a
//! signal is lost or a protocol bug livelocks the PEs, the host sees
//! *nothing* — the simulation (like the real system) would simply run
//! forever. The engine's deadlock detector only catches the case where no
//! agent can ever run again; a PE spinning on `signal_fetch` defeats it.
//!
//! The watchdog closes that gap: each monitored agent increments a
//! *heartbeat* flag whenever it makes real progress (one iteration of the
//! persistent loop). The watchdog wakes every `interval` of virtual time and
//! compares heartbeat snapshots; if an entire interval passes with no beat
//! from some PE and the run has not completed, it aborts the simulation with
//! a [`SimError::Timeout`] naming the stalled PE — including the wait-for
//! cycle when the blocked PEs' declared edges close one.

use gpu_sim::Machine;
use sim_des::{Cmp, Flag, SimDur, SimError};

/// Configuration for [`spawn_watchdog`].
pub struct WatchdogSpec {
    /// Heartbeat flags to observe, with a diagnostic label each
    /// (typically `("pe{n}", flag)`).
    pub heartbeats: Vec<(String, Flag)>,
    /// Completion flag: the run is finished once it reaches `target`.
    pub done: Flag,
    /// Completion target (e.g. the number of PEs).
    pub target: u64,
    /// Virtual-time window within which every monitored agent must beat.
    pub interval: SimDur,
}

/// Spawn the watchdog agent on `machine`'s engine.
///
/// Must be called before `machine.run()`. The watchdog exits cleanly when
/// `done` reaches `target`; otherwise, the first interval in which **no**
/// heartbeat advances ends the run with an attributed timeout (the stalled
/// agents named, the wait-for cycle reported when one exists).
pub fn spawn_watchdog(machine: &Machine, spec: WatchdogSpec) {
    let engine = machine.engine();
    engine.spawn("watchdog", move |ctx| {
        let mut last: Vec<u64> = spec
            .heartbeats
            .iter()
            .map(|(_, f)| ctx.flag_value(*f))
            .collect();
        loop {
            let deadline = ctx.now() + spec.interval;
            if ctx
                .wait_flag_until(spec.done, Cmp::Ge, spec.target, deadline)
                .is_ok()
            {
                return; // run completed
            }
            let current: Vec<u64> = spec
                .heartbeats
                .iter()
                .map(|(_, f)| ctx.flag_value(*f))
                .collect();
            let progressed = current
                .iter()
                .zip(last.iter())
                .any(|(now, before)| now > before);
            if !progressed {
                // A full interval with zero progress anywhere: diagnose.
                let stalled: Vec<&str> = spec
                    .heartbeats
                    .iter()
                    .zip(current.iter().zip(last.iter()))
                    .filter(|(_, (now, before))| now <= before)
                    .map(|((label, _), _)| label.as_str())
                    .collect();
                let err: SimError =
                    ctx.timeout_error(format!("heartbeat from [{}]", stalled.join(", ")), deadline);
                ctx.abort(err);
            }
            last = current;
        }
    });
}
