//! End-to-end CG tests: bitwise verification against order-matched
//! references, convergence, performance shape, determinism.

use cpufree_solvers::{run_baseline, run_cpu_free, PoissonProblem};
use gpu_sim::ExecMode;

#[test]
fn cpu_free_cg_matches_reference_bitwise() {
    let prob = PoissonProblem::new(18, 22, 12, 4);
    let out = run_cpu_free(&prob, ExecMode::Full);
    assert_eq!(out.verify(&prob), 0.0);
}

#[test]
fn baseline_cg_matches_reference_bitwise() {
    let prob = PoissonProblem::new(18, 22, 12, 4);
    let out = run_baseline(&prob, ExecMode::Full);
    assert_eq!(out.verify(&prob), 0.0);
}

#[test]
fn both_variants_agree_numerically() {
    // Different reduction orders → not bitwise, but physically identical.
    let prob = PoissonProblem::new(16, 20, 15, 4);
    let a = run_cpu_free(&prob, ExecMode::Full);
    let b = run_baseline(&prob, ExecMode::Full);
    let (xa, xb) = (a.gather(&prob), b.gather(&prob));
    let diff = xa
        .iter()
        .zip(&xb)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0, f64::max);
    assert!(diff < 1e-9, "variants diverged: {diff}");
}

#[test]
fn cg_converges() {
    let prob = PoissonProblem::new(18, 18, 40, 4);
    let out = run_cpu_free(&prob, ExecMode::Full);
    let short = PoissonProblem::new(18, 18, 1, 4);
    let first = run_cpu_free(&short, ExecMode::Full);
    assert!(
        out.final_rho < first.final_rho * 1e-6,
        "no convergence: {} vs {}",
        out.final_rho,
        first.final_rho
    );
}

#[test]
fn non_power_of_two_pes_work() {
    let prob = PoissonProblem::new(14, 20, 8, 3);
    let out = run_cpu_free(&prob, ExecMode::Full);
    assert_eq!(out.verify(&prob), 0.0);
}

#[test]
fn single_pe_works() {
    let prob = PoissonProblem::new(14, 14, 10, 1);
    for out in [
        run_cpu_free(&prob, ExecMode::Full),
        run_baseline(&prob, ExecMode::Full),
    ] {
        assert_eq!(out.verify(&prob), 0.0);
    }
}

#[test]
fn cpu_free_cg_outperforms_baseline() {
    // Reduction-heavy workload: 2 allreduces + 5 launches per iteration in
    // the baseline vs device-side collectives in CPU-Free.
    let prob = PoissonProblem::new(258, 514, 30, 8);
    let free = run_cpu_free(&prob, ExecMode::TimingOnly);
    let base = run_baseline(&prob, ExecMode::TimingOnly);
    assert!(
        free.total.as_nanos() * 3 < base.total.as_nanos() * 2,
        "CPU-Free {} should clearly beat baseline {}",
        free.total,
        base.total
    );
}

#[test]
fn advantage_large_at_every_scale() {
    // Both sides' reduction costs grow ~log2(n) (host barrier hops vs
    // device doubling rounds); the CPU-Free advantage stays a multiple.
    let speedup = |n: usize| {
        let prob = PoissonProblem::new(130, 32 * n + 2, 20, n);
        let free = run_cpu_free(&prob, ExecMode::TimingOnly);
        let base = run_baseline(&prob, ExecMode::TimingOnly);
        base.total.as_nanos() as f64 / free.total.as_nanos() as f64
    };
    for n in [2usize, 4, 8] {
        let s = speedup(n);
        assert!(s > 3.0, "expected >3x at {n} GPUs, got x{s:.2}");
    }
}

#[test]
fn timing_only_matches_full_virtual_time() {
    let prob = PoissonProblem::new(18, 22, 8, 4);
    let full = run_cpu_free(&prob, ExecMode::Full);
    let timing = run_cpu_free(&prob, ExecMode::TimingOnly);
    assert_eq!(full.total, timing.total);
}

#[test]
fn determinism() {
    let prob = PoissonProblem::new(16, 18, 9, 4);
    let a = run_cpu_free(&prob, ExecMode::Full);
    let b = run_cpu_free(&prob, ExecMode::Full);
    assert_eq!(a.total, b.total);
    assert_eq!(a.final_rho, b.final_rho);
    assert_eq!(a.x_owned, b.x_owned);
}
