//! Fault-tolerant CPU-Free CG: the persistent kernel of [`crate::cg`]
//! hardened with iteration-granular checkpoint/restart, retrying puts,
//! interruptible waits and allreduces, and a watchdog — driven by a
//! deterministic [`FaultPlan`].
//!
//! # Protocol
//!
//! The numerical schedule is identical to [`crate::cg::run_cpu_free`]
//! (p-halo exchange → matvec → pq-allreduce → axpy → rho-allreduce →
//! p-update), so fault-free results match the plain variant bitwise. The
//! hardening mirrors the stencil's (`stencil_lab::ft`):
//!
//! 1. **Recovery check** at the top of each iteration and inside every
//!    wait: if any PE announced a rollback, join it.
//! 2. **Checkpoint** at every `checkpoint_every`-iteration boundary:
//!    interruptible rendezvous, `quiet`, then snapshot `x`, `r`, `q`, the
//!    full local `p` slab (owned rows *and* halos) and the scalar `rho`.
//!    The allreduce epoch counter needs no snapshot — it is a pure
//!    function of the checkpoint iteration (`1 + 2·k0`: one `rho0` call
//!    plus two calls per completed iteration).
//! 3. **Crash**: scrub device state (NaN), charge a reboot, announce the
//!    rollback, join it.
//! 4. **Interruptible allreduce** (`nvshmem_sim::allreduce_scalar_ft`):
//!    deadline-sliced waits poll for recovery notices; dropped deliveries
//!    inside the collective are retried with backoff.
//!
//! **Recovery**: `quiet` → barrier A (nothing in flight machine-wide) →
//! restore the four buffers and `rho`, rewind the allreduce counter to
//! `1 + 2·k0`, reset the local allreduce and halo flags to their exact
//! fault-free values at iteration `k0` → barrier B → resume at `k0 + 1`.
//! Restored state equals the original byte state and every kernel is
//! deterministic, so the replay — including every reduction order — is
//! bit-identical to the fault-free run.

use crate::cg::{alloc_state, collect, halo_geom, halo_len, CgResult, PeState};
use crate::kernels::{axpy_xr, dot_local, matvec, update_p, vec_op_scaled};
use crate::problem::{PoissonProblem, ReduceOrder};
use cpufree_core::{launch_cpu_free, spawn_watchdog, WatchdogSpec};
use gpu_sim::{BlockGroup, CostModel, ExecMode, FaultPlan, KernelCtx, Machine};
use nvshmem_sim::{
    allreduce_scalar_ft, AllreduceWs, ReduceOp, ShmemCtx, ShmemWorld, SymArray, SymSignal,
};
use sim_des::lock::Mutex;
use sim_des::{ms, us, Barrier, Category, Cmp, Flag, SignalOp, SimDur, SimError};
use std::sync::Arc;

/// Configuration of a fault-tolerant CG run.
#[derive(Clone)]
pub struct CgFtConfig {
    /// The underlying Poisson problem.
    pub prob: PoissonProblem,
    /// The deterministic fault schedule (empty plan = fault-free).
    pub plan: FaultPlan,
    /// Checkpoint every this many iterations (>= 1).
    pub checkpoint_every: u64,
    /// Deadline slice for interruptible waits (recovery-notice poll period).
    pub poll: SimDur,
    /// Watchdog stall-detection window.
    pub watchdog_interval: SimDur,
}

impl CgFtConfig {
    /// Defaults: checkpoint every 4 iterations, 50 µs poll slices, 10 ms
    /// watchdog window.
    pub fn new(prob: PoissonProblem, plan: FaultPlan) -> CgFtConfig {
        CgFtConfig {
            prob,
            plan,
            checkpoint_every: 4,
            poll: us(50.0),
            watchdog_interval: ms(10.0),
        }
    }
}

/// Outcome of a fault-tolerant CG run.
#[derive(Debug)]
pub struct CgFtResult {
    /// The usual solver result (total time, stats, solution, rho).
    pub result: CgResult,
    /// Rollback rounds performed (summed over PEs / number of PEs).
    pub rollbacks: u64,
    /// Extra put attempts spent on dropped deliveries (all PEs).
    pub retries: u64,
    /// Checkpoints taken (per PE).
    pub checkpoints: u64,
}

#[derive(Default)]
struct FtCounters {
    rollback_rounds: u64,
    retries: u64,
    checkpoints: u64,
}

/// The FT control plane shared by all PEs.
#[derive(Clone)]
struct FtPlane {
    recover: SymSignal,
    cp_barrier: Barrier,
    rec_barrier_a: Barrier,
    rec_barrier_b: Barrier,
    done_barrier: Barrier,
}

/// Run fault-tolerant CPU-Free CG under `cfg.plan`.
///
/// Returns `Err` only for unrecoverable outcomes — a watchdog-diagnosed
/// stall surfaces as [`SimError::Timeout`] naming the stuck PE and the
/// wait-for cycle. All faults covered by the plan classes are recovered
/// transparently, with the overhead visible in `result.total`.
pub fn run_cpu_free_ft(cfg: &CgFtConfig, exec: ExecMode) -> Result<CgFtResult, SimError> {
    assert!(cfg.checkpoint_every >= 1, "checkpoint_every must be >= 1");
    let prob = &cfg.prob;
    let machine = Machine::with_topology(prob.n_pes, CostModel::a100_hgx(), prob.topology, exec);
    machine.set_fault_plan(cfg.plan.clone());
    let world = ShmemWorld::init(&machine);
    let slab = prob.slab();
    let len = (slab.max_layers() + 2) * prob.nx;
    let p = world.malloc("p", len);
    let sig_low = world.signal(0);
    let sig_high = world.signal(0);
    let ws = AllreduceWs::new(&world);
    let states: Vec<Arc<PeState>> = (0..prob.n_pes)
        .map(|pe| {
            let st = alloc_state(&machine, prob, pe);
            if exec == ExecMode::Full {
                p.local(pe).write_slice(0, &prob.local_b(pe));
            }
            Arc::new(st)
        })
        .collect();
    let geom = Arc::new(halo_geom(prob));
    let rhos = Arc::new(Mutex::new(vec![0.0f64; prob.n_pes]));

    let n = prob.n_pes;
    let plane = FtPlane {
        recover: world.signal(0),
        cp_barrier: machine.barrier(n),
        rec_barrier_a: machine.barrier(n),
        rec_barrier_b: machine.barrier(n),
        done_barrier: machine.barrier(n),
    };
    let heartbeats: Vec<Flag> = (0..n).map(|_| machine.flag(0)).collect();
    let ft_done = machine.flag(0);
    let counters = Arc::new(Mutex::new(FtCounters::default()));

    spawn_watchdog(
        &machine,
        WatchdogSpec {
            heartbeats: heartbeats
                .iter()
                .enumerate()
                .map(|(pe, f)| (format!("pe{pe}"), *f))
                .collect(),
            done: ft_done,
            target: n as u64,
            interval: cfg.watchdog_interval,
        },
    );

    let iters = prob.iterations;
    let prob_c = prob.clone();
    let states_l = states.clone();
    let rhos_l = Arc::clone(&rhos);
    let counters_l = Arc::clone(&counters);
    let cfg_l = cfg.clone();
    let end = launch_cpu_free(&machine, "cg_ft", 1024, move |pe| {
        let st = Arc::clone(&states_l[pe]);
        let world = world.clone();
        let p = p.clone();
        let (sig_low, sig_high) = (sig_low.clone(), sig_high.clone());
        let mut ws = ws.clone();
        let geom = Arc::clone(&geom);
        let rhos = Arc::clone(&rhos_l);
        let counters = Arc::clone(&counters_l);
        let plane = plane.clone();
        let hb = heartbeats[pe];
        let hl = halo_len(&prob_c);
        let cfg = cfg_l.clone();
        vec![BlockGroup::new("cgft", 108, move |k| {
            let mut sh = ShmemCtx::new(&world, k);
            let (rho, local) = pe_body(
                k, &mut sh, &st, &p, &sig_low, &sig_high, &mut ws, &geom, &plane, &cfg, pe, n,
                iters, hl, hb,
            );
            rhos.lock()[pe] = rho;
            let mut g = counters.lock();
            g.rollback_rounds += local.rollbacks;
            g.retries += local.retries;
            g.checkpoints = g.checkpoints.max(local.checkpoints);
            k.agent_mut().signal(ft_done, SignalOp::Add, 1);
        })]
    })?;

    let result = collect(prob, &machine, &states, end, rhos, ReduceOrder::Doubling);
    let g = counters.lock();
    Ok(CgFtResult {
        result,
        rollbacks: g.rollback_rounds / n as u64,
        retries: g.retries,
        checkpoints: g.checkpoints,
    })
}

struct PeOutcome {
    rollbacks: u64,
    retries: u64,
    checkpoints: u64,
}

/// What one checkpoint captures: the four vectors and the scalar rho.
struct CgSnap {
    x: Vec<f64>,
    r: Vec<f64>,
    q: Vec<f64>,
    p: Vec<f64>,
    rho: f64,
}

/// Everything one PE does: the hardened persistent CG loop. Returns the
/// final rho and the FT counters.
#[allow(clippy::too_many_arguments)]
fn pe_body(
    k: &mut KernelCtx<'_>,
    sh: &mut ShmemCtx,
    st: &PeState,
    p: &SymArray,
    sig_low: &SymSignal,
    sig_high: &SymSignal,
    ws: &mut AllreduceWs,
    geom: &crate::cg::HaloGeom,
    plane: &FtPlane,
    cfg: &CgFtConfig,
    pe: usize,
    n: usize,
    iters: u64,
    hl: usize,
    heartbeat: Flag,
) -> (f64, PeOutcome) {
    let faults = k.machine().faults();
    let (nx, layers) = (st.nx, st.layers);
    let points = (layers * nx) as u64;
    let cp = cfg.checkpoint_every;
    let poll = cfg.poll;
    let crash_at = faults.crash_iteration(pe);
    let recover = &plane.recover;

    let mut t: u64 = 1;
    let mut handled: u64 = 0; // rollback announcements consumed
    let mut k0: u64 = 0; // iteration the last checkpoint captured
    let mut last_cp: Option<u64> = None;
    let mut snap: Option<CgSnap> = None;
    let mut crashed = false;
    let mut out = PeOutcome {
        rollbacks: 0,
        retries: 0,
        checkpoints: 0,
    };

    // rho0 = <r, r>. Cannot be interrupted: the first rollback announcement
    // requires every PE past the first checkpoint barrier, which is after
    // rho0 — but its puts may still hit drop windows, hence the FT variant.
    let mut partial = 0.0;
    vec_op_scaled(
        k,
        points,
        16,
        2,
        faults.compute_mult(pe, k.now()),
        "dot(r,r)",
        || {
            partial = dot_local(&st.r, &st.r, nx, layers);
        },
    );
    let mut rho = allreduce_scalar_ft(
        sh,
        k,
        ws,
        partial,
        ReduceOp::Sum,
        poll,
        &mut out.retries,
        &mut |_, _| false,
    )
    .expect("rho0 allreduce cannot be interrupted");

    // Restore from the checkpoint: quiet -> A -> restore + rewinds -> B.
    macro_rules! do_recovery {
        () => {{
            // Drain own in-flight deliveries; once every PE is past
            // barrier A, nothing stale is in flight machine-wide.
            sh.quiet(k);
            k.agent_mut().barrier(plane.rec_barrier_a);
            if let Some(s) = &snap {
                st.x.write_slice(0, &s.x);
                st.r.write_slice(0, &s.r);
                st.q.write_slice(0, &s.q);
                p.local(pe).write_slice(0, &s.p);
                rho = s.rho;
            }
            let bytes = 4 * (p.local(pe).len() * 8) as u64;
            let dur = k
                .machine()
                .transport()
                .host_copy(k.device(), bytes, k.now());
            k.busy(Category::Api, "cgft.restore", dur);
            // Rewind the allreduce epoch to its fault-free value after k0
            // iterations (rho0 + two calls per iteration) and reset the
            // local collective and halo flags to exactly that state.
            let seq0 = 1 + 2 * k0;
            ws.set_seq(seq0);
            ws.reset_local(k, pe, seq0);
            k.agent_mut().signal(sig_low.flag(pe), SignalOp::Set, k0);
            k.agent_mut().signal(sig_high.flag(pe), SignalOp::Set, k0);
            k.agent_mut().barrier(plane.rec_barrier_b);
            handled += 1;
            out.rollbacks += 1;
            t = k0 + 1;
        }};
    }

    // Interruptible allreduce wrapper: Some(value) or recovery-joined.
    macro_rules! ft_reduce {
        ($val:expr) => {
            allreduce_scalar_ft(
                sh,
                k,
                ws,
                $val,
                ReduceOp::Sum,
                poll,
                &mut out.retries,
                &mut |sh, k| sh.signal_fetch(k, recover) > handled,
            )
        };
    }

    'outer: loop {
        'iter: while t <= iters {
            // ① Join any announced rollback before doing new work.
            if sh.signal_fetch(k, recover) > handled {
                do_recovery!();
                continue 'iter;
            }

            // ② Checkpoint at every cp-iteration boundary (incl. t = 1: the
            // post-rho0 state, so the earliest crash is recoverable).
            if (t - 1).is_multiple_of(cp) && last_cp != Some(t - 1) {
                sh.quiet(k);
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if k.agent_mut()
                        .barrier_until(plane.cp_barrier, deadline)
                        .is_ok()
                    {
                        break;
                    }
                }
                let bytes = 4 * (p.local(pe).len() * 8) as u64;
                let dur = k
                    .machine()
                    .transport()
                    .host_copy(k.device(), bytes, k.now());
                k.busy(Category::Api, "cgft.checkpoint", dur);
                snap = Some(CgSnap {
                    x: st.x.to_vec(),
                    r: st.r.to_vec(),
                    q: st.q.to_vec(),
                    p: p.local(pe).to_vec(),
                    rho,
                });
                k0 = t - 1;
                last_cp = Some(k0);
                out.checkpoints += 1;
            }

            // ③ Scheduled crash: scrub device state, reboot, announce the
            // rollback to every PE, then join the recovery ourselves.
            if !crashed && crash_at == Some(t) {
                crashed = true;
                if k.exec_mode() == ExecMode::Full {
                    st.x.fill(f64::NAN);
                    st.r.fill(f64::NAN);
                    st.q.fill(f64::NAN);
                    p.local(pe).fill(f64::NAN);
                }
                k.busy(Category::Api, "cgft.reboot", us(500.0));
                for q in 0..n {
                    sh.signal_op(k, recover, SignalOp::Add, 1, q);
                }
                do_recovery!();
                continue 'iter;
            }

            // ④ p-halo exchange, reliably (same schedule as the plain run).
            if pe > 0 {
                out.retries += (sh.putmem_signal_reliable(
                    k,
                    p,
                    geom.high_halo_of[pe - 1],
                    p.local(pe),
                    geom.first_row,
                    hl,
                    sig_high,
                    SignalOp::Set,
                    t,
                    pe - 1,
                ) - 1) as u64;
            }
            if pe + 1 < n {
                out.retries += (sh.putmem_signal_reliable(
                    k,
                    p,
                    geom.low_halo,
                    p.local(pe),
                    layers * nx,
                    hl,
                    sig_low,
                    SignalOp::Set,
                    t,
                    pe + 1,
                ) - 1) as u64;
            }
            // ⑤ Halo waits, deadline-sliced so lost signals cannot hang us.
            if pe > 0 {
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if sh
                        .signal_wait_until_deadline(k, sig_low, Cmp::Ge, t, deadline)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            if pe + 1 < n {
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if sh
                        .signal_wait_until_deadline(k, sig_high, Cmp::Ge, t, deadline)
                        .is_ok()
                    {
                        break;
                    }
                }
            }

            // ⑥ q = A p (stretched by any straggler window).
            vec_op_scaled(
                k,
                points,
                16,
                9,
                faults.compute_mult(pe, k.now()),
                "matvec",
                || {
                    matvec(p.local(pe), &st.q, nx, layers);
                },
            );
            // ⑦ alpha = rho / <p, q>.
            let mut pq_part = 0.0;
            vec_op_scaled(
                k,
                points,
                16,
                2,
                faults.compute_mult(pe, k.now()),
                "dot(p,q)",
                || {
                    pq_part = dot_local(p.local(pe), &st.q, nx, layers);
                },
            );
            let pq = match ft_reduce!(pq_part) {
                Some(v) => v,
                None => {
                    do_recovery!();
                    continue 'iter;
                }
            };
            let alpha = rho / pq;
            // ⑧ x += alpha p; r -= alpha q.
            vec_op_scaled(
                k,
                points,
                32,
                4,
                faults.compute_mult(pe, k.now()),
                "axpy(x,r)",
                || {
                    axpy_xr(&st.x, &st.r, p.local(pe), &st.q, alpha, nx, layers);
                },
            );
            // ⑨ rho' = <r, r>; beta.
            let mut rr_part = 0.0;
            vec_op_scaled(
                k,
                points,
                16,
                2,
                faults.compute_mult(pe, k.now()),
                "dot(r,r)",
                || {
                    rr_part = dot_local(&st.r, &st.r, nx, layers);
                },
            );
            let rho_new = match ft_reduce!(rr_part) {
                Some(v) => v,
                None => {
                    do_recovery!();
                    continue 'iter;
                }
            };
            let beta = rho_new / rho;
            rho = rho_new;
            // ⑩ p = r + beta p.
            vec_op_scaled(
                k,
                points,
                24,
                2,
                faults.compute_mult(pe, k.now()),
                "update p",
                || {
                    update_p(p.local(pe), &st.r, beta, nx, layers);
                },
            );

            // ⑪ Progress heartbeat for the watchdog.
            k.agent_mut().signal(heartbeat, SignalOp::Add, 1);
            t += 1;
        }

        // Final rendezvous — interruptible, so PEs that already finished
        // can still be recruited into a late rollback and redo the tail.
        loop {
            if sh.signal_fetch(k, recover) > handled {
                do_recovery!();
                continue 'outer;
            }
            let deadline = k.now() + poll;
            if k.agent_mut()
                .barrier_until(plane.done_barrier, deadline)
                .is_ok()
            {
                break 'outer;
            }
        }
    }
    (rho, out)
}
