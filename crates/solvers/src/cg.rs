//! The two distributed CG implementations: CPU-Free (one persistent kernel
//! per PE, device-side halo exchange and allreduce) and CPU-controlled
//! (discrete kernels, host-staged reductions, host barriers) — the solver
//! counterpart of the paper's stencil comparison, and the application class
//! (PERKS' CG) the paper cites as benefiting from persistent execution.

use crate::kernels::{axpy_xr, dot_local, matvec, update_p, vec_op};
use crate::problem::{PoissonProblem, ReduceOrder};
use cpufree_core::{launch_cpu_free, RunStats};
use gpu_sim::{BlockGroup, Buf, CostModel, DevId, ExecMode, Machine};
use nvshmem_sim::{allreduce_scalar, AllreduceWs, ReduceOp, ShmemCtx, ShmemWorld};
use sim_des::lock::Mutex;
use sim_des::{Category, Cmp, SignalOp, SimDur, SimTime};
use std::sync::Arc;

/// Result of one distributed CG run.
#[derive(Debug)]
pub struct CgResult {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// Trace-derived measurements.
    pub stats: RunStats,
    /// Each PE's owned rows of the solution x (layers × nx).
    pub x_owned: Vec<Vec<f64>>,
    /// Final residual norm squared (as computed by the run's own reduction).
    pub final_rho: f64,
    /// The reduction order this run used (for reference matching).
    pub order: ReduceOrder,
    /// Checker report (`None` unless the problem enabled `check`).
    pub check: Option<gpu_sim::CheckReport>,
}

impl CgResult {
    /// Assemble the global x grid (boundary zeros).
    pub fn gather(&self, prob: &PoissonProblem) -> Vec<f64> {
        let nx = prob.nx;
        let slab = prob.slab();
        let mut full = vec![0.0; nx * prob.ny];
        for (pe, owned) in self.x_owned.iter().enumerate() {
            let start = slab.start(pe);
            full[(start + 1) * nx..(start + 1 + slab.layers(pe)) * nx].copy_from_slice(owned);
        }
        full
    }

    /// Max abs deviation from the order-matched sequential reference.
    pub fn verify(&self, prob: &PoissonProblem) -> f64 {
        let (xref, rho_ref) = prob.reference_cg(self.order);
        let mine = self.gather(prob);
        let x_err = mine
            .iter()
            .zip(&xref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let rho_err = (self.final_rho - rho_ref).abs();
        x_err.max(rho_err)
    }
}

/// Per-PE workload description shared by both variants.
pub(crate) struct PeState {
    pub(crate) x: Buf,
    pub(crate) r: Buf,
    pub(crate) q: Buf,
    pub(crate) nx: usize,
    pub(crate) layers: usize,
}

pub(crate) fn alloc_state(machine: &Machine, prob: &PoissonProblem, pe: usize) -> PeState {
    let slab = prob.slab();
    let layers = slab.layers(pe);
    let len = (slab.max_layers() + 2) * prob.nx;
    let mk = |n: &str| machine.alloc(DevId(pe), format!("{n}@{pe}"), len);
    let st = PeState {
        x: mk("x"),
        r: mk("r"),
        q: mk("q"),
        nx: prob.nx,
        layers,
    };
    if machine.exec_mode() == ExecMode::Full {
        let b = prob.local_b(pe);
        st.r.write_slice(0, &b); // r0 = b (x0 = 0)
    }
    st
}

/// Elements a halo row carries.
pub(crate) fn halo_len(prob: &PoissonProblem) -> usize {
    prob.nx
}

/// Per-iteration p-halo exchange offsets (same layout as the stencil).
pub(crate) struct HaloGeom {
    pub(crate) first_row: usize,
    pub(crate) low_halo: usize,
    pub(crate) high_halo_of: Vec<usize>,
}

pub(crate) fn halo_geom(prob: &PoissonProblem) -> HaloGeom {
    let slab = prob.slab();
    HaloGeom {
        first_row: prob.nx,
        low_halo: 0,
        high_halo_of: (0..prob.n_pes)
            .map(|pe| (slab.layers(pe) + 1) * prob.nx)
            .collect(),
    }
}

/// Run distributed CG in the **CPU-Free model**: a single persistent
/// cooperative kernel per PE performs the halo exchange, the matvec and
/// vector updates, and the device-side allreduces. The host launches once.
pub fn run_cpu_free(prob: &PoissonProblem, exec: ExecMode) -> CgResult {
    let machine = Machine::with_topology(prob.n_pes, CostModel::a100_hgx(), prob.topology, exec);
    if prob.check {
        machine.enable_checker();
    }
    if let Some(seed) = prob.jitter {
        machine.set_wake_jitter(seed);
    }
    let world = ShmemWorld::init(&machine);
    let slab = prob.slab();
    let len = (slab.max_layers() + 2) * prob.nx;
    // p lives on the symmetric heap (its halos are written remotely).
    let p = world.malloc("p", len);
    let sig_low = world.signal(0);
    let sig_high = world.signal(0);
    let ws = AllreduceWs::new(&world);
    let states: Vec<Arc<PeState>> = (0..prob.n_pes)
        .map(|pe| {
            let st = alloc_state(&machine, prob, pe);
            if exec == ExecMode::Full {
                // p0 = r0 = b.
                p.local(pe).write_slice(0, &prob.local_b(pe));
            }
            Arc::new(st)
        })
        .collect();
    let geom = Arc::new(halo_geom(prob));
    let rhos = Arc::new(Mutex::new(vec![0.0f64; prob.n_pes]));

    let n = prob.n_pes;
    let iters = prob.iterations;
    let prob_c = prob.clone();
    let states_l = states.clone();
    let rhos_l = Arc::clone(&rhos);
    let end = launch_cpu_free(&machine, "cg", 1024, move |pe| {
        let st = Arc::clone(&states_l[pe]);
        let world = world.clone();
        let p = p.clone();
        let (sig_low, sig_high) = (sig_low.clone(), sig_high.clone());
        let mut ws = ws.clone();
        let geom = Arc::clone(&geom);
        let rhos = Arc::clone(&rhos_l);
        let hl = halo_len(&prob_c);
        vec![BlockGroup::new("cg", 108, move |k| {
            let mut sh = ShmemCtx::new(&world, k);
            let checker = k.machine().checker();
            let (nx, layers) = (st.nx, st.layers);
            let points = (layers * nx) as u64;
            // rho0 = <r, r>.
            let mut partial = 0.0;
            vec_op(k, points, 16, 2, "dot(r,r)", || {
                partial = dot_local(&st.r, &st.r, nx, layers);
            });
            let mut rho = allreduce_scalar(&mut sh, k, &mut ws, partial, ReduceOp::Sum);
            for it in 1..=iters {
                if let Some(chk) = &checker {
                    chk.iteration(pe, it, &k.agent().name(), k.now());
                }
                // ① p-halo exchange (device-initiated, flag semaphore).
                if pe > 0 {
                    sh.putmem_signal_nbi(
                        k,
                        &p,
                        geom.high_halo_of[pe - 1],
                        p.local(pe),
                        geom.first_row,
                        hl,
                        &sig_high,
                        SignalOp::Set,
                        it,
                        pe - 1,
                    );
                }
                if pe + 1 < n {
                    sh.putmem_signal_nbi(
                        k,
                        &p,
                        geom.low_halo,
                        p.local(pe),
                        layers * nx,
                        hl,
                        &sig_low,
                        SignalOp::Set,
                        it,
                        pe + 1,
                    );
                }
                if pe > 0 {
                    sh.signal_wait_until(k, &sig_low, Cmp::Ge, it);
                }
                if pe + 1 < n {
                    sh.signal_wait_until(k, &sig_high, Cmp::Ge, it);
                }
                // ② q = A p.
                k.check_read(p.local(pe), 0, (layers + 2) * nx, "matvec p read");
                k.check_write(&st.q, nx, (layers + 1) * nx, "matvec q write");
                vec_op(k, points, 16, 9, "matvec", || {
                    matvec(p.local(pe), &st.q, nx, layers);
                });
                // ③ alpha = rho / <p, q>.
                let mut pq_part = 0.0;
                vec_op(k, points, 16, 2, "dot(p,q)", || {
                    pq_part = dot_local(p.local(pe), &st.q, nx, layers);
                });
                let pq = allreduce_scalar(&mut sh, k, &mut ws, pq_part, ReduceOp::Sum);
                let alpha = rho / pq;
                // ④ x += alpha p; r -= alpha q.
                vec_op(k, points, 32, 4, "axpy(x,r)", || {
                    axpy_xr(&st.x, &st.r, p.local(pe), &st.q, alpha, nx, layers);
                });
                // ⑤ rho' = <r, r>; beta.
                let mut rr_part = 0.0;
                vec_op(k, points, 16, 2, "dot(r,r)", || {
                    rr_part = dot_local(&st.r, &st.r, nx, layers);
                });
                let rho_new = allreduce_scalar(&mut sh, k, &mut ws, rr_part, ReduceOp::Sum);
                let beta = rho_new / rho;
                rho = rho_new;
                // ⑥ p = r + beta p.
                k.check_write(p.local(pe), nx, (layers + 1) * nx, "update p write");
                vec_op(k, points, 24, 2, "update p", || {
                    update_p(p.local(pe), &st.r, beta, nx, layers);
                });
            }
            rhos.lock()[pe] = rho;
        })]
    })
    .expect("cpu-free CG run failed");
    collect(prob, &machine, &states, end, rhos, ReduceOrder::Doubling)
}

/// Run distributed CG **CPU-controlled**: discrete kernels per vector op,
/// host-staged dot reductions (device partial → D2H copy → host barrier →
/// linear combine), host-driven halo exchange — the launch/sync-heavy
/// structure persistent execution eliminates.
pub fn run_baseline(prob: &PoissonProblem, exec: ExecMode) -> CgResult {
    let machine = Machine::with_topology(prob.n_pes, CostModel::a100_hgx(), prob.topology, exec);
    if prob.check {
        machine.enable_checker();
    }
    if let Some(seed) = prob.jitter {
        machine.set_wake_jitter(seed);
    }
    let slab = prob.slab();
    let len = (slab.max_layers() + 2) * prob.nx;
    // p in plain device memory; halos exchanged with host memcpys.
    let ps: Vec<Buf> = (0..prob.n_pes)
        .map(|pe| machine.alloc(DevId(pe), format!("p@{pe}"), len))
        .collect();
    let states: Vec<Arc<PeState>> = (0..prob.n_pes)
        .map(|pe| {
            let st = alloc_state(&machine, prob, pe);
            if exec == ExecMode::Full {
                ps[pe].write_slice(0, &prob.local_b(pe));
            }
            Arc::new(st)
        })
        .collect();
    // Host-visible slots for the staged allreduce (one per rank).
    let slots = machine.alloc_host("dot.slots", prob.n_pes);
    let geom = Arc::new(halo_geom(prob));
    let bar = machine.barrier(prob.n_pes);
    let rhos = Arc::new(Mutex::new(vec![0.0f64; prob.n_pes]));

    let n = prob.n_pes;
    let iters = prob.iterations;
    for pe in 0..n {
        let st = Arc::clone(&states[pe]);
        let p_mine = ps[pe].clone();
        let p_low = (pe > 0).then(|| ps[pe - 1].clone());
        let p_high = (pe + 1 < n).then(|| ps[pe + 1].clone());
        let slots = slots.clone();
        let geom = Arc::clone(&geom);
        let rhos = Arc::clone(&rhos);
        let hl = halo_len(prob);
        let machine_c = machine.clone();
        machine.spawn_host(format!("rank{pe}"), move |host| {
            let dev = DevId(pe);
            let stream = host.create_stream(dev, "comp");
            let partial_dev = machine_c.alloc(dev, "partial", 1);
            let (nx, layers) = (st.nx, st.layers);
            let points = (layers * nx) as u64;
            // Host-staged allreduce of a device partial.
            macro_rules! host_allreduce {
                ($label:expr) => {{
                    // D2H copy of the partial into my slot.
                    host.memcpy_async(&stream, &slots, pe, &partial_dev, 0, 1);
                    host.sync_stream(&stream);
                    host.host_barrier(bar, n);
                    // Linear combine on the host (every rank computes it).
                    let mut acc = slots.get(0);
                    for r in 1..n {
                        acc += slots.get(r);
                    }
                    host.agent_mut()
                        .busy(Category::Api, $label, machine_c.cost().api_call());
                    host.host_barrier(bar, n); // slots free for reuse
                    acc
                }};
            }
            // rho0.
            {
                let (st, pd) = (Arc::clone(&st), partial_dev.clone());
                host.launch(&stream, "dot_rr", move |k| {
                    vec_op(k, points, 16, 2, "dot(r,r)", || {
                        pd.set(0, dot_local(&st.r, &st.r, nx, layers));
                    });
                });
            }
            let mut rho = host_allreduce!("combine rho0");
            for _it in 1..=iters {
                // ① host-driven p-halo exchange.
                if let Some(low) = &p_low {
                    host.memcpy_async(
                        &stream,
                        low,
                        geom.high_halo_of[pe - 1],
                        &p_mine,
                        geom.first_row,
                        hl,
                    );
                }
                if let Some(high) = &p_high {
                    host.memcpy_async(&stream, high, geom.low_halo, &p_mine, layers * nx, hl);
                }
                host.sync_stream(&stream);
                host.host_barrier(bar, n);
                // ② matvec.
                {
                    let (st, p) = (Arc::clone(&st), p_mine.clone());
                    host.launch(&stream, "matvec", move |k| {
                        vec_op(k, points, 16, 9, "matvec", || {
                            matvec(&p, &st.q, nx, layers);
                        });
                    });
                }
                // ③ alpha.
                {
                    let (st, p, pd) = (Arc::clone(&st), p_mine.clone(), partial_dev.clone());
                    host.launch(&stream, "dot_pq", move |k| {
                        vec_op(k, points, 16, 2, "dot(p,q)", || {
                            pd.set(0, dot_local(&p, &st.q, nx, layers));
                        });
                    });
                }
                let pq = host_allreduce!("combine pq");
                let alpha = rho / pq;
                // ④ axpy.
                {
                    let (st, p) = (Arc::clone(&st), p_mine.clone());
                    host.launch(&stream, "axpy_xr", move |k| {
                        vec_op(k, points, 32, 4, "axpy(x,r)", || {
                            axpy_xr(&st.x, &st.r, &p, &st.q, alpha, nx, layers);
                        });
                    });
                }
                // ⑤ rho'.
                {
                    let (st, pd) = (Arc::clone(&st), partial_dev.clone());
                    host.launch(&stream, "dot_rr", move |k| {
                        vec_op(k, points, 16, 2, "dot(r,r)", || {
                            pd.set(0, dot_local(&st.r, &st.r, nx, layers));
                        });
                    });
                }
                let rho_new = host_allreduce!("combine rho");
                let beta = rho_new / rho;
                rho = rho_new;
                // ⑥ p update.
                {
                    let (st, p) = (Arc::clone(&st), p_mine.clone());
                    host.launch(&stream, "update_p", move |k| {
                        vec_op(k, points, 24, 2, "update p", || {
                            update_p(&p, &st.r, beta, nx, layers);
                        });
                    });
                }
                host.sync_stream(&stream);
            }
            rhos.lock()[pe] = rho;
        });
    }
    let end = machine.run().expect("baseline CG run failed");
    collect(prob, &machine, &states, end, rhos, ReduceOrder::Linear)
}

pub(crate) fn collect(
    prob: &PoissonProblem,
    machine: &Machine,
    states: &[Arc<PeState>],
    end: SimTime,
    rhos: Arc<Mutex<Vec<f64>>>,
    order: ReduceOrder,
) -> CgResult {
    let total = end.since(SimTime::ZERO);
    let stats = RunStats::from_trace(&machine.trace(), total, prob.iterations);
    let x_owned = states
        .iter()
        .map(|st| {
            let mut out = vec![0.0; st.layers * st.nx];
            st.x.read_slice(st.nx, &mut out);
            out
        })
        .collect();
    let final_rho = rhos.lock()[0];
    CgResult {
        total,
        stats,
        x_owned,
        final_rho,
        order,
        check: machine.checker().map(|c| c.report()),
    }
}
