//! The model problem: a 2D Poisson equation `A x = b` with the 5-point
//! Laplacian on a Dirichlet grid, slab-decomposed across PEs — and its
//! sequential reference CG with configurable reduction order (so both the
//! linear host-side and the recursive-doubling device-side allreduce can be
//! verified bitwise).

use gpu_sim::TopologyKind;
use nvshmem_sim::{reference_reduce, ReduceOp};
use stencil_lab::Slab;

/// The distributed CG experiment configuration.
#[derive(Debug, Clone)]
pub struct PoissonProblem {
    /// Grid columns, including the two fixed boundary columns.
    pub nx: usize,
    /// Grid rows, including the two fixed boundary rows.
    pub ny: usize,
    /// CG iterations to run (fixed count — deterministic workload).
    pub iterations: u64,
    /// Number of PEs (slab decomposition along rows).
    pub n_pes: usize,
    /// Interconnect topology the machine is built with.
    pub topology: TopologyKind,
    /// Seed for deterministic wake-order jitter (schedule perturbation);
    /// `None` = the engine's canonical order.
    pub jitter: Option<u64>,
    /// Enable the happens-before race detector / conformance checker.
    pub check: bool,
}

/// How partial dot-products are combined across PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOrder {
    /// Linear, by ascending rank (the host-side baseline path).
    Linear,
    /// Recursive doubling (the device-side collective path).
    Doubling,
}

impl PoissonProblem {
    /// Construct and validate.
    pub fn new(nx: usize, ny: usize, iterations: u64, n_pes: usize) -> PoissonProblem {
        assert!(nx >= 3 && ny >= 3 && n_pes >= 1);
        assert!(ny - 2 >= n_pes, "each PE needs at least one interior row");
        PoissonProblem {
            nx,
            ny,
            iterations,
            n_pes,
            topology: TopologyKind::NvlinkAllToAll,
            jitter: None,
            check: false,
        }
    }

    /// Builder-style: run on a different interconnect topology.
    pub fn with_topology(mut self, topology: TopologyKind) -> PoissonProblem {
        self.topology = topology;
        self
    }

    /// Builder-style: perturb the wake order of simultaneously-woken agents
    /// with a deterministic seed (schedule-robustness testing).
    pub fn with_jitter(mut self, seed: u64) -> PoissonProblem {
        self.jitter = Some(seed);
        self
    }

    /// Builder-style: enable the happens-before / conformance checker.
    pub fn with_check(mut self) -> PoissonProblem {
        self.check = true;
        self
    }

    /// The slab decomposition of the interior rows.
    pub fn slab(&self) -> Slab {
        Slab::new(self.ny - 2, self.n_pes)
    }

    /// The source term at global cell `(gi, gj)` (zero on the boundary).
    pub fn b_value(&self, gi: usize, gj: usize) -> f64 {
        if gi == 0 || gi == self.ny - 1 || gj == 0 || gj == self.nx - 1 {
            0.0
        } else {
            (((gi * 13 + gj * 7) % 23) as f64 - 11.0) / 23.0
        }
    }

    /// The local b field of `pe` as a (layers+2) x nx slab with halo rows.
    pub fn local_b(&self, pe: usize) -> Vec<f64> {
        let slab = self.slab();
        let (start, layers) = (slab.start(pe), slab.layers(pe));
        let mut v = vec![0.0; (layers + 2) * self.nx];
        for l in 0..layers + 2 {
            for j in 0..self.nx {
                v[l * self.nx + j] = self.b_value(start + l, j);
            }
        }
        v
    }

    /// Combine per-PE dot partials in the given order.
    pub fn combine(&self, partials: &[f64], order: ReduceOrder) -> f64 {
        match order {
            ReduceOrder::Linear => reference_reduce(partials, ReduceOp::Sum, false),
            ReduceOrder::Doubling => {
                reference_reduce(partials, ReduceOp::Sum, self.n_pes.is_power_of_two())
            }
        }
    }

    /// Sequential reference CG that mimics the distributed arithmetic
    /// exactly: per-slab partial dots combined in `order`. Returns the full
    /// x grid and the final residual norm squared.
    pub fn reference_cg(&self, order: ReduceOrder) -> (Vec<f64>, f64) {
        let (nx, ny) = (self.nx, self.ny);
        let slab = self.slab();
        let idx = |i: usize, j: usize| i * nx + j;
        let mut b = vec![0.0; nx * ny];
        for i in 0..ny {
            for j in 0..nx {
                b[idx(i, j)] = self.b_value(i, j);
            }
        }
        let mut x = vec![0.0; nx * ny];
        let mut r = b;
        let mut p = r.clone();
        let mut q = vec![0.0; nx * ny];

        // Per-slab dot, iterating owned rows in order (matches the device
        // kernels element-for-element).
        let dot = |a: &[f64], c: &[f64], order: ReduceOrder| -> f64 {
            let partials: Vec<f64> = (0..self.n_pes)
                .map(|pe| {
                    let (start, layers) = (slab.start(pe), slab.layers(pe));
                    let mut acc = 0.0;
                    for i in start + 1..start + 1 + layers {
                        for j in 0..nx {
                            acc += a[idx(i, j)] * c[idx(i, j)];
                        }
                    }
                    acc
                })
                .collect();
            self.combine(&partials, order)
        };

        let mut rho = dot(&r, &r, order);
        for _ in 0..self.iterations {
            // q = A p on the interior.
            for i in 1..ny - 1 {
                for j in 1..nx - 1 {
                    q[idx(i, j)] = 4.0 * p[idx(i, j)]
                        - p[idx(i - 1, j)]
                        - p[idx(i + 1, j)]
                        - p[idx(i, j - 1)]
                        - p[idx(i, j + 1)];
                }
            }
            let pq = dot(&p, &q, order);
            let alpha = rho / pq;
            for i in 1..ny - 1 {
                for j in 0..nx {
                    x[idx(i, j)] += alpha * p[idx(i, j)];
                    r[idx(i, j)] -= alpha * q[idx(i, j)];
                }
            }
            let rho_new = dot(&r, &r, order);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 1..ny - 1 {
                for j in 0..nx {
                    p[idx(i, j)] = r[idx(i, j)] + beta * p[idx(i, j)];
                }
            }
        }
        (x, rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_is_zero_on_boundary() {
        let p = PoissonProblem::new(10, 12, 1, 2);
        for j in 0..10 {
            assert_eq!(p.b_value(0, j), 0.0);
            assert_eq!(p.b_value(11, j), 0.0);
        }
        for i in 0..12 {
            assert_eq!(p.b_value(i, 0), 0.0);
            assert_eq!(p.b_value(i, 9), 0.0);
        }
        assert_ne!(p.b_value(3, 4), 0.0);
    }

    #[test]
    fn local_b_matches_global() {
        let p = PoissonProblem::new(8, 14, 1, 3);
        let slab = p.slab();
        for pe in 0..3 {
            let local = p.local_b(pe);
            let start = slab.start(pe);
            for l in 0..slab.layers(pe) + 2 {
                for j in 0..8 {
                    assert_eq!(local[l * 8 + j], p.b_value(start + l, j));
                }
            }
        }
    }

    #[test]
    fn reference_cg_reduces_residual() {
        let p = PoissonProblem::new(18, 18, 25, 4);
        let (_, rho_25) = p.reference_cg(ReduceOrder::Doubling);
        let p0 = PoissonProblem::new(18, 18, 1, 4);
        let (_, rho_1) = p0.reference_cg(ReduceOrder::Doubling);
        assert!(
            rho_25 < rho_1 * 1e-3,
            "CG failed to converge: {rho_25} vs {rho_1}"
        );
    }

    #[test]
    fn reference_orders_agree_approximately() {
        let p = PoissonProblem::new(16, 16, 10, 4);
        let (xa, ra) = p.reference_cg(ReduceOrder::Linear);
        let (xb, rb) = p.reference_cg(ReduceOrder::Doubling);
        let diff = xa
            .iter()
            .zip(&xb)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9, "order changed the answer too much: {diff}");
        assert!((ra - rb).abs() < 1e-12);
    }

    #[test]
    fn solution_solves_system_approximately() {
        // After enough iterations the explicit residual b - A x is small.
        let p = PoissonProblem::new(14, 14, 60, 2);
        let (x, _) = p.reference_cg(ReduceOrder::Linear);
        let nx = 14;
        let mut worst = 0.0f64;
        for i in 1..13 {
            for j in 1..13 {
                let ax = 4.0 * x[i * nx + j]
                    - x[(i - 1) * nx + j]
                    - x[(i + 1) * nx + j]
                    - x[i * nx + j - 1]
                    - x[i * nx + j + 1];
                worst = worst.max((p.b_value(i, j) - ax).abs());
            }
        }
        assert!(worst < 1e-8, "residual {worst}");
    }
}
