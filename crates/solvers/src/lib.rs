//! # cpufree-solvers — iterative solvers on the CPU-Free model
//!
//! The paper motivates CPU-free execution with iterative methods whose
//! every step needs inter-device data movement and synchronization; its
//! PERKS foundation demonstrates persistent-kernel gains on **Conjugate
//! Gradient** as well as stencils. This crate provides that second
//! application class: a distributed CG solver for the 2D Poisson problem,
//! implemented twice —
//!
//! * [`cg::run_cpu_free`] — one persistent kernel per PE: device-initiated
//!   p-halo exchange (flag semaphores), device-side **allreduce**
//!   (`nvshmem_sim::allreduce_scalar`, recursive doubling) for the two dot
//!   products per iteration, zero host involvement after launch;
//! * [`cg::run_baseline`] — the CPU-controlled shape: five kernel launches
//!   per iteration, host-staged reductions (device partial → D2H copy →
//!   host barrier → combine), host-driven halo exchange.
//!
//! Both are verified against a sequential reference CG that mimics the
//! distributed reduction order exactly ([`PoissonProblem::reference_cg`]),
//! so results match **bitwise**.

#![warn(missing_docs)]

pub mod cg;
pub mod degraded;
pub mod ft;
pub mod kernels;
pub mod problem;

pub use cg::{run_baseline, run_cpu_free, CgResult};
pub use degraded::{degraded_reference_cg, run_cpu_free_degraded, CgDegradedResult};
pub use ft::{run_cpu_free_ft, CgFtConfig, CgFtResult};
pub use problem::{PoissonProblem, ReduceOrder};
