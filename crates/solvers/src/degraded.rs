//! Degraded-mode CPU-Free CG: when a PE crashes, the surviving quorum
//! finishes the solve among themselves — the solver counterpart of
//! [`stencil_lab::degraded`].
//!
//! # Model
//!
//! * A [`sim_des::CrashFault`] is a *permanent* death at the start of
//!   iteration `d` (plan-derived "oracle membership", see
//!   [`gpu_sim::alive_at`]): the PE completes iterations `1..d` fully —
//!   its last halo push (at iteration `d-1`) carried the search direction
//!   as of the end of iteration `d-2`, and that boundary row stays frozen
//!   in the neighbors' halos forever after.
//! * Every global reduction is a **healed quorum collective**
//!   ([`nvshmem_sim::allreduce_scalar_quorum`]): at iteration `t` exactly
//!   the members of `alive_at(plan, n, t)` contribute, combined in global
//!   PE-index order, so every survivor holds the bitwise identical
//!   `alpha`/`beta` and the same deterministic contribution report.
//! * A **killed link** between survivors is rerouted inside the transport
//!   ([`gpu_sim::HealedRoutes`]) — no protocol change, results bit-equal
//!   to the fault-free run.
//!
//! The oracle is [`degraded_reference_cg`]: the sequential CG mirror with
//! dead slabs frozen, halo snapshots for the matvec, and dots restricted
//! to the living quorum. Survivors must match it **bit for bit**.

use crate::kernels::{axpy_xr, dot_local, matvec, update_p, vec_op, vec_op_scaled};
use crate::problem::PoissonProblem;
use cpufree_core::launch_cpu_free;
use gpu_sim::{alive_at, BlockGroup, CheckReport, CostModel, ExecMode, FaultPlan, Machine};
use nvshmem_sim::{
    allreduce_scalar_quorum, AllreduceWs, BackoffPolicy, ReduceOp, ShmemCtx, ShmemWorld,
};
use sim_des::lock::Mutex;
use sim_des::{Cmp, SignalOp, SimDur, SimError, SimTime};
use std::sync::Arc;

use crate::cg::{alloc_state, halo_geom, halo_len, PeState};

/// Result of a degraded-mode CG run.
#[derive(Debug)]
pub struct CgDegradedResult {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// The surviving quorum (ascending PE ids).
    pub quorum: Vec<usize>,
    /// Each PE's owned rows of x; only quorum members' slabs are
    /// meaningful (dead slabs are scrubbed).
    pub x_owned: Vec<Vec<f64>>,
    /// Final residual norm squared, as reduced over the final quorum.
    pub final_rho: f64,
    /// The contribution report of the final quorum reduction — the PEs
    /// whose partial dots entered `final_rho`.
    pub report: Vec<usize>,
    /// Extra put attempts spent on dropped deliveries (all PEs).
    pub retries: u64,
    /// Link pairs dead by the end of the run (rerouted around).
    pub dead_pairs: Vec<(usize, usize)>,
    /// Checker report (`None` unless the problem enabled `check`).
    pub check: Option<CheckReport>,
}

impl CgDegradedResult {
    /// Max abs deviation of the survivors' slabs (and final rho) from the
    /// sequential [`degraded_reference_cg`] — `0.0` when bit-exact.
    pub fn verify(&self, prob: &PoissonProblem, plan: &FaultPlan) -> f64 {
        let (xref, rho_ref) = degraded_reference_cg(prob, plan);
        let slab = prob.slab();
        let nx = prob.nx;
        let mut max = (self.final_rho - rho_ref).abs();
        for &pe in &self.quorum {
            let start = slab.start(pe);
            let want = &xref[(start + 1) * nx..(start + 1 + slab.layers(pe)) * nx];
            for (got, want) in self.x_owned[pe].iter().zip(want) {
                max = max.max((got - want).abs());
            }
        }
        max
    }
}

/// Run distributed CG in the CPU-Free model under `plan`, degrading onto
/// the surviving quorum instead of recovering.
pub fn run_cpu_free_degraded(
    prob: &PoissonProblem,
    plan: &FaultPlan,
    exec: ExecMode,
    backoff: Option<BackoffPolicy>,
) -> Result<CgDegradedResult, SimError> {
    let n = prob.n_pes;
    let iters = prob.iterations;
    let quorum = alive_at(plan, n, iters);
    assert!(
        !quorum.is_empty(),
        "degraded CG needs at least one survivor (plan kills everyone)"
    );
    let machine = Machine::with_topology(n, CostModel::a100_hgx(), prob.topology, exec);
    machine.set_fault_plan(plan.clone());
    if prob.check {
        machine.enable_checker();
    }
    if let Some(seed) = prob.jitter {
        machine.set_wake_jitter(seed);
    }
    let world = ShmemWorld::init(&machine);
    let slab = prob.slab();
    let len = (slab.max_layers() + 2) * prob.nx;
    let p = world.malloc("p", len);
    let sig_low = world.signal(0);
    let sig_high = world.signal(0);
    let ws = AllreduceWs::new_ring(&world);
    let states: Vec<Arc<PeState>> = (0..n)
        .map(|pe| {
            let st = alloc_state(&machine, prob, pe);
            if exec == ExecMode::Full {
                p.local(pe).write_slice(0, &prob.local_b(pe));
            }
            Arc::new(st)
        })
        .collect();
    let geom = Arc::new(halo_geom(prob));
    let rhos = Arc::new(Mutex::new(vec![0.0f64; n]));
    let reports: Arc<Mutex<Vec<Vec<usize>>>> = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let retries = Arc::new(Mutex::new(0u64));

    let prob_c = prob.clone();
    let plan_c = plan.clone();
    let states_l = states.clone();
    let rhos_l = Arc::clone(&rhos);
    let reports_l = Arc::clone(&reports);
    let retries_l = Arc::clone(&retries);
    let end = launch_cpu_free(&machine, "cg_degraded", 1024, move |pe| {
        let st = Arc::clone(&states_l[pe]);
        let world = world.clone();
        let p = p.clone();
        let (sig_low, sig_high) = (sig_low.clone(), sig_high.clone());
        let mut ws = ws.clone();
        let geom = Arc::clone(&geom);
        let rhos = Arc::clone(&rhos_l);
        let reports = Arc::clone(&reports_l);
        let retries = Arc::clone(&retries_l);
        let hl = halo_len(&prob_c);
        let prob = prob_c.clone();
        let plan = plan_c.clone();
        let backoff = backoff.clone();
        vec![BlockGroup::new("cg", 108, move |k| {
            let mut sh = ShmemCtx::new(&world, k);
            if let Some(policy) = &backoff {
                sh.set_backoff_policy(policy.clone());
            }
            let faults = k.machine().faults();
            let checker = k.machine().checker();
            let (nx, layers) = (st.nx, st.layers);
            let points = (layers * nx) as u64;
            let n = prob.n_pes;
            let my_death = faults.crash_iteration(pe).map(|d| d.max(1));
            let death_low = (pe > 0)
                .then(|| faults.crash_iteration(pe - 1).map(|d| d.max(1)))
                .flatten();
            let death_high = (pe + 1 < n)
                .then(|| faults.crash_iteration(pe + 1).map(|d| d.max(1)))
                .flatten();
            let mut spent = 0u64;
            // rho0 = <r, r> over the full world (death begins at t >= 1).
            let everyone: Vec<usize> = (0..n).collect();
            let mut partial = 0.0;
            vec_op(k, points, 16, 2, "dot(r,r)", || {
                partial = dot_local(&st.r, &st.r, nx, layers);
            });
            let (mut rho, mut report) = allreduce_scalar_quorum(
                &mut sh,
                k,
                &mut ws,
                partial,
                ReduceOp::Sum,
                &everyone,
                &mut spent,
            );
            for it in 1..=prob.iterations {
                // ⓪ Scheduled death: drain in-flight puts (their sources
                // must leave intact), scrub, stop forever.
                if my_death == Some(it) {
                    sh.quiet(k);
                    if k.exec_mode() == ExecMode::Full {
                        st.x.fill(f64::NAN);
                        st.r.fill(f64::NAN);
                        st.q.fill(f64::NAN);
                        p.local(pe).fill(f64::NAN);
                    }
                    k.busy(sim_des::Category::Api, "degraded.die", sim_des::us(1.0));
                    *retries.lock() += spent;
                    return;
                }
                let members = alive_at(&plan, n, it);
                if let Some(chk) = &checker {
                    chk.iteration(pe, it, &k.agent().name(), k.now());
                }
                // ① p-halo exchange with *living* neighbors, reliably.
                if pe > 0 && death_low.is_none_or(|d| it < d) {
                    spent += (sh.putmem_signal_reliable(
                        k,
                        &p,
                        geom.high_halo_of[pe - 1],
                        p.local(pe),
                        geom.first_row,
                        hl,
                        &sig_high,
                        SignalOp::Set,
                        it,
                        pe - 1,
                    ) - 1) as u64;
                }
                if pe + 1 < n && death_high.is_none_or(|d| it < d) {
                    spent += (sh.putmem_signal_reliable(
                        k,
                        &p,
                        geom.low_halo,
                        p.local(pe),
                        layers * nx,
                        hl,
                        &sig_low,
                        SignalOp::Set,
                        it,
                        pe + 1,
                    ) - 1) as u64;
                }
                // Waits clamp at a dead neighbor's last committed push.
                if pe > 0 {
                    let target = death_low.map_or(it, |d| it.min(d - 1));
                    sh.signal_wait_from(k, &sig_low, Cmp::Ge, target, pe - 1);
                }
                if pe + 1 < n {
                    let target = death_high.map_or(it, |d| it.min(d - 1));
                    sh.signal_wait_from(k, &sig_high, Cmp::Ge, target, pe + 1);
                }
                // ② q = A p (straggler windows stretch the kernel).
                let straggle = faults.compute_mult(pe, k.now());
                k.check_read(p.local(pe), 0, (layers + 2) * nx, "matvec p read");
                k.check_write(&st.q, nx, (layers + 1) * nx, "matvec q write");
                vec_op_scaled(k, points, 16, 9, straggle, "matvec", || {
                    matvec(p.local(pe), &st.q, nx, layers);
                });
                // ③ alpha = rho / <p, q> over the quorum.
                let mut pq_part = 0.0;
                vec_op(k, points, 16, 2, "dot(p,q)", || {
                    pq_part = dot_local(p.local(pe), &st.q, nx, layers);
                });
                let (pq, _) = allreduce_scalar_quorum(
                    &mut sh,
                    k,
                    &mut ws,
                    pq_part,
                    ReduceOp::Sum,
                    &members,
                    &mut spent,
                );
                let alpha = rho / pq;
                // ④ x += alpha p; r -= alpha q.
                vec_op(k, points, 32, 4, "axpy(x,r)", || {
                    axpy_xr(&st.x, &st.r, p.local(pe), &st.q, alpha, nx, layers);
                });
                // ⑤ rho' = <r, r> over the quorum; beta.
                let mut rr_part = 0.0;
                vec_op(k, points, 16, 2, "dot(r,r)", || {
                    rr_part = dot_local(&st.r, &st.r, nx, layers);
                });
                let (rho_new, rep) = allreduce_scalar_quorum(
                    &mut sh,
                    k,
                    &mut ws,
                    rr_part,
                    ReduceOp::Sum,
                    &members,
                    &mut spent,
                );
                let beta = rho_new / rho;
                rho = rho_new;
                report = rep;
                // ⑥ p = r + beta p.
                k.check_write(p.local(pe), nx, (layers + 1) * nx, "update p write");
                vec_op(k, points, 24, 2, "update p", || {
                    update_p(p.local(pe), &st.r, beta, nx, layers);
                });
            }
            rhos.lock()[pe] = rho;
            reports.lock()[pe] = report;
            *retries.lock() += spent;
        })]
    })?;

    let total = end.since(SimTime::ZERO);
    let x_owned: Vec<Vec<f64>> = states
        .iter()
        .map(|st| {
            let mut out = vec![0.0; st.layers * st.nx];
            st.x.read_slice(st.nx, &mut out);
            out
        })
        .collect();
    let rhos = rhos.lock();
    let reports = reports.lock();
    let final_rho = rhos[quorum[0]];
    // Every survivor must hold the bitwise identical rho and report.
    for &pe in &quorum {
        assert_eq!(
            rhos[pe].to_bits(),
            final_rho.to_bits(),
            "quorum rho diverged on pe{pe}"
        );
        assert_eq!(reports[pe], reports[quorum[0]], "report diverged on pe{pe}");
    }
    let retries = *retries.lock();
    Ok(CgDegradedResult {
        total,
        quorum: quorum.clone(),
        x_owned,
        final_rho,
        report: reports[quorum[0]].clone(),
        retries,
        dead_pairs: machine.faults().dead_pairs(end),
        check: machine.checker().map(|c| c.report()),
    })
}

/// The sequential oracle for degraded CG: the [`PoissonProblem`] reference
/// solve with (a) dead slabs frozen at their last completed state, (b) the
/// matvec reading **halo snapshots** — an alive PE republishes its search
/// direction each iteration, a dead PE's rows stay at the last value it
/// pushed (end of iteration `d-2`) — and (c) every dot restricted to the
/// iteration's living quorum, combined linearly in ascending PE order
/// (exactly [`nvshmem_sim::allreduce_scalar_quorum`]'s order). Returns the
/// full x grid and the survivors' final residual norm squared.
pub fn degraded_reference_cg(prob: &PoissonProblem, plan: &FaultPlan) -> (Vec<f64>, f64) {
    let (nx, ny) = (prob.nx, prob.ny);
    let n = prob.n_pes;
    let slab = prob.slab();
    let idx = |i: usize, j: usize| i * nx + j;
    let death: Vec<Option<u64>> = (0..n)
        .map(|pe| {
            plan.crashes
                .iter()
                .filter(|c| c.node == pe)
                .map(|c| c.at_iteration)
                .min()
                .map(|d| d.max(1))
        })
        .collect();
    let alive = |pe: usize, t: u64| death[pe].is_none_or(|d| t < d);

    let mut b = vec![0.0; nx * ny];
    for i in 0..ny {
        for j in 0..nx {
            b[idx(i, j)] = prob.b_value(i, j);
        }
    }
    let mut x = vec![0.0; nx * ny];
    let mut r = b;
    let mut p = r.clone();
    // The halo-visible copy of p: alive PEs republish their rows each
    // iteration; a dead PE's rows freeze at its last push.
    let mut pv = p.clone();
    let mut q = vec![0.0; nx * ny];

    let dot = |a: &[f64], c: &[f64], t: u64| -> f64 {
        let partials: Vec<f64> = (0..n)
            .filter(|&pe| alive(pe, t))
            .map(|pe| {
                let (start, layers) = (slab.start(pe), slab.layers(pe));
                let mut acc = 0.0;
                for i in start + 1..start + 1 + layers {
                    for j in 0..nx {
                        acc += a[idx(i, j)] * c[idx(i, j)];
                    }
                }
                acc
            })
            .collect();
        // Ascending-PE linear fold == the quorum collective's order.
        partials[1..].iter().fold(partials[0], |acc, v| acc + v)
    };

    let mut rho = dot(&r, &r, 0);
    for it in 1..=prob.iterations {
        // ① Alive PEs publish their current search direction.
        for pe in 0..n {
            if alive(pe, it) {
                let (start, layers) = (slab.start(pe), slab.layers(pe));
                pv[(start + 1) * nx..(start + 1 + layers) * nx]
                    .copy_from_slice(&p[(start + 1) * nx..(start + 1 + layers) * nx]);
            }
        }
        // ② q = A pv on alive rows only.
        for pe in 0..n {
            if !alive(pe, it) {
                continue;
            }
            let (start, layers) = (slab.start(pe), slab.layers(pe));
            for i in start + 1..start + 1 + layers {
                for j in 1..nx - 1 {
                    q[idx(i, j)] = 4.0 * pv[idx(i, j)]
                        - pv[idx(i - 1, j)]
                        - pv[idx(i + 1, j)]
                        - pv[idx(i, j - 1)]
                        - pv[idx(i, j + 1)];
                }
            }
        }
        let pq = dot(&p, &q, it);
        let alpha = rho / pq;
        // ③ axpy on alive rows.
        for pe in 0..n {
            if !alive(pe, it) {
                continue;
            }
            let (start, layers) = (slab.start(pe), slab.layers(pe));
            for i in start + 1..start + 1 + layers {
                for j in 0..nx {
                    x[idx(i, j)] += alpha * p[idx(i, j)];
                    r[idx(i, j)] -= alpha * q[idx(i, j)];
                }
            }
        }
        let rho_new = dot(&r, &r, it);
        let beta = rho_new / rho;
        rho = rho_new;
        // ④ p update on alive rows.
        for pe in 0..n {
            if !alive(pe, it) {
                continue;
            }
            let (start, layers) = (slab.start(pe), slab.layers(pe));
            for i in start + 1..start + 1 + layers {
                for j in 0..nx {
                    p[idx(i, j)] = r[idx(i, j)] + beta * p[idx(i, j)];
                }
            }
        }
    }
    (x, rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ReduceOrder;
    use gpu_sim::TopologyKind;
    use sim_des::{CrashFault, LinkFault};

    fn prob(kind: TopologyKind) -> PoissonProblem {
        PoissonProblem::new(18, 18, 8, 4).with_topology(kind)
    }

    #[test]
    fn fault_free_degraded_matches_linear_reference() {
        let p = prob(TopologyKind::NvlinkAllToAll);
        let plan = FaultPlan::new();
        let out = run_cpu_free_degraded(&p, &plan, ExecMode::Full, None).unwrap();
        assert_eq!(out.quorum, vec![0, 1, 2, 3]);
        assert_eq!(out.report, vec![0, 1, 2, 3]);
        assert_eq!(out.verify(&p, &plan), 0.0);
        // With nobody dead the mirror equals the plain linear reference.
        let (xref, rho_ref) = p.reference_cg(ReduceOrder::Linear);
        let (xd, rho_d) = degraded_reference_cg(&p, &plan);
        assert_eq!(xd, xref);
        assert_eq!(rho_d.to_bits(), rho_ref.to_bits());
    }

    #[test]
    fn single_pe_crash_survivors_verify_on_all_presets() {
        let plan = FaultPlan::new().with_crash(CrashFault {
            node: 1,
            at_iteration: 3,
        });
        let mut rhos = Vec::new();
        for kind in TopologyKind::presets() {
            let p = prob(kind);
            let out = run_cpu_free_degraded(&p, &plan, ExecMode::Full, None).unwrap();
            assert_eq!(out.quorum, vec![0, 2, 3], "{}", kind.name());
            assert_eq!(out.report, vec![0, 2, 3], "{}", kind.name());
            assert_eq!(out.verify(&p, &plan), 0.0, "{}", kind.name());
            rhos.push(out.final_rho.to_bits());
        }
        // Bit-identical across presets.
        assert!(rhos.windows(2).all(|w| w[0] == w[1]), "{rhos:?}");
    }

    #[test]
    fn single_link_kill_is_bit_identical_to_fault_free() {
        for kind in TopologyKind::presets() {
            let p = prob(kind);
            let clean = run_cpu_free_degraded(&p, &FaultPlan::new(), ExecMode::Full, None).unwrap();
            let plan =
                FaultPlan::new().with_link(LinkFault::kill(2, 3, SimTime::ZERO + sim_des::us(5.0)));
            let out = run_cpu_free_degraded(&p, &plan, ExecMode::Full, None).unwrap();
            assert_eq!(out.quorum, vec![0, 1, 2, 3], "{}", kind.name());
            assert_eq!(
                out.final_rho.to_bits(),
                clean.final_rho.to_bits(),
                "{}",
                kind.name()
            );
            assert_eq!(out.x_owned, clean.x_owned, "{}", kind.name());
            assert_eq!(out.dead_pairs, vec![(2, 3)], "{}", kind.name());
            assert_eq!(out.verify(&p, &plan), 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn crash_at_first_iteration_still_verifies() {
        // The dying PE contributes to rho0, then never iterates.
        let plan = FaultPlan::new().with_crash(CrashFault {
            node: 3,
            at_iteration: 1,
        });
        let p = prob(TopologyKind::TwoNode);
        let out = run_cpu_free_degraded(&p, &plan, ExecMode::Full, None).unwrap();
        assert_eq!(out.quorum, vec![0, 1, 2]);
        assert_eq!(out.verify(&p, &plan), 0.0);
    }

    #[test]
    fn degraded_cg_is_deterministic() {
        let plan = FaultPlan::new().with_crash(CrashFault {
            node: 0,
            at_iteration: 2,
        });
        let run = || {
            let p = prob(TopologyKind::NvlinkRing);
            let out = run_cpu_free_degraded(&p, &plan, ExecMode::Full, None).unwrap();
            (out.total, out.final_rho.to_bits(), out.retries)
        };
        assert_eq!(run(), run());
    }
}
