//! The local (per-PE) vector kernels of CG: matvec, dot, axpy, p-update —
//! functional math on slab-local buffers plus their roofline costs.

use gpu_sim::{Buf, ExecMode, KernelCtx};
use sim_des::Category;

/// Charge a vector kernel's roofline time and run the math in Full mode.
pub fn vec_op(
    k: &mut KernelCtx<'_>,
    points: u64,
    bytes_per_pt: u64,
    flops_per_pt: u64,
    label: &str,
    f: impl FnOnce(),
) {
    vec_op_scaled(k, points, bytes_per_pt, flops_per_pt, 1.0, label, f);
}

/// [`vec_op`] with the charged time stretched by `mult` — straggler windows
/// in fault-injected runs slow the kernel without changing its output.
pub fn vec_op_scaled(
    k: &mut KernelCtx<'_>,
    points: u64,
    bytes_per_pt: u64,
    flops_per_pt: u64,
    mult: f64,
    label: &str,
    f: impl FnOnce(),
) {
    let dur = k
        .cost()
        .sweep(points * bytes_per_pt, points * flops_per_pt, 1.0);
    k.busy(Category::Compute, label, dur * mult);
    if k.exec_mode() == ExecMode::Full {
        f();
    }
}

/// `q[1..=layers][1..nx-2] = A p` for the 5-point Laplacian (rows indexed
/// locally; row 0 and layers+1 are halos).
pub fn matvec(p: &Buf, q: &Buf, nx: usize, layers: usize) {
    p.with(|pv| {
        q.with_mut(|qv| {
            for i in 1..=layers {
                for j in 1..nx - 1 {
                    qv[i * nx + j] = 4.0 * pv[i * nx + j]
                        - pv[(i - 1) * nx + j]
                        - pv[(i + 1) * nx + j]
                        - pv[i * nx + j - 1]
                        - pv[i * nx + j + 1];
                }
            }
        })
    });
}

/// Partial dot product over the owned rows (all columns, matching the
/// reference's per-slab iteration order). Handles `a` and `b` being the
/// same allocation (`<r,r>`) — buffer locks are not reentrant.
pub fn dot_local(a: &Buf, b: &Buf, nx: usize, layers: usize) -> f64 {
    let run = |av: &[f64], bv: &[f64]| {
        let mut acc = 0.0;
        for i in 1..=layers {
            for j in 0..nx {
                acc += av[i * nx + j] * bv[i * nx + j];
            }
        }
        acc
    };
    if a.same_alloc(b) {
        a.with(|av| run(av, av))
    } else {
        a.with(|av| b.with(|bv| run(av, bv)))
    }
}

/// `x += alpha p; r -= alpha q` over the owned rows.
pub fn axpy_xr(x: &Buf, r: &Buf, p: &Buf, q: &Buf, alpha: f64, nx: usize, layers: usize) {
    x.with_mut(|xv| {
        r.with_mut(|rv| {
            p.with(|pv| {
                q.with(|qv| {
                    for i in 1..=layers {
                        for j in 0..nx {
                            xv[i * nx + j] += alpha * pv[i * nx + j];
                            rv[i * nx + j] -= alpha * qv[i * nx + j];
                        }
                    }
                })
            })
        })
    });
}

/// `p = r + beta p` over the owned rows.
pub fn update_p(p: &Buf, r: &Buf, beta: f64, nx: usize, layers: usize) {
    p.with_mut(|pv| {
        r.with(|rv| {
            for i in 1..=layers {
                for j in 0..nx {
                    pv[i * nx + j] = rv[i * nx + j] + beta * pv[i * nx + j];
                }
            }
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Place;

    fn buf(data: &[f64]) -> Buf {
        let b = Buf::new(Place::Host, "t", data.len());
        b.write_slice(0, data);
        b
    }

    #[test]
    fn matvec_applies_laplacian() {
        // 1 owned row, nx=3: single interior point at (1,1).
        let p = buf(&[0.0, 1.0, 0.0, 2.0, 3.0, 4.0, 0.0, 5.0, 0.0]);
        let q = buf(&[0.0; 9]);
        matvec(&p, &q, 3, 1);
        // 4*3 - 1 - 5 - 2 - 4 = 0
        assert_eq!(q.get(4), 0.0);
        assert_eq!(q.get(3), 0.0, "boundary column untouched");
    }

    #[test]
    fn dot_covers_owned_rows_only() {
        // layers=1, nx=2: owned row is elements [2,3].
        let a = buf(&[9.0, 9.0, 2.0, 3.0, 9.0, 9.0]);
        let b = buf(&[9.0, 9.0, 4.0, 5.0, 9.0, 9.0]);
        assert_eq!(dot_local(&a, &b, 2, 1), 2.0 * 4.0 + 3.0 * 5.0);
    }

    #[test]
    fn axpy_and_update() {
        let x = buf(&[0.0; 6]);
        let r = buf(&[0.0, 0.0, 10.0, 20.0, 0.0, 0.0]);
        let p = buf(&[0.0, 0.0, 1.0, 2.0, 0.0, 0.0]);
        let q = buf(&[0.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
        axpy_xr(&x, &r, &p, &q, 2.0, 2, 1);
        assert_eq!(x.get(2), 2.0);
        assert_eq!(r.get(3), 12.0);
        update_p(&p, &r, 0.5, 2, 1);
        assert_eq!(p.get(2), 4.0 + 0.5); // r=4 after axpy, p was 1
    }
}
