//! Happens-before tracking, vector-clock race detection, and CPU-Free
//! protocol conformance checking.
//!
//! When enabled (see [`Engine::enable_hb`](crate::Engine::enable_hb)) the
//! engine records a **structured happens-before event stream** alongside the
//! span trace: every signal send/delivery, satisfied wait, barrier release
//! and agent spawn becomes an [`HbEvent`] with explicit dependency edges.
//! On top of that event stream the tracker maintains **vector clocks**:
//!
//! * every agent owns one clock component, ticked at each synchronization
//!   operation and each recorded memory access;
//! * every *asynchronous* effect (an `nbi` put in flight, a DMA completion)
//!   owns a **fresh** component of its own ([`AsyncClock`]). The effect's
//!   accesses are stamped with the issuer's clock *plus* that component, and
//!   the component only enters another agent's clock when that agent
//!   synchronizes through the effect's completion signal (or the issuer
//!   performs a `quiet`). A source buffer rewritten before delivery is
//!   therefore *unordered* with the in-flight read — exactly the
//!   source-reuse race the NVSHMEM spec warns about;
//! * flag cells and barriers carry the join of every clock that signalled
//!   through them, so waiters inherit order from their producers.
//!
//! Memory effects are reported by the layers above as half-open element
//! ranges on opaque location ids; two accesses **race** when their ranges
//! overlap, at least one is a write, and neither happens-before the other.
//! Conformance rules checked in addition to races:
//!
//! * **lost signals** — a wait that was still blocked when the simulation
//!   ended becomes a diagnostic naming the waiter and the peer it expected
//!   the put-with-signal from ([`HbTracker::note_unsatisfied_wait`]);
//! * **nbi source reuse** — a race in which one endpoint is the in-flight
//!   source read of an `nbi` put is classified [`DiagKind::NbiSourceReuse`];
//! * **iteration divergence** — per-PE iteration counters reported at
//!   commit points must never diverge from a neighbor's by more than 1
//!   ([`HbTracker::record_iteration`]).
//!
//! The per-flag clock is a *cumulative join* over all deliveries, which is
//! exact for the dedicated semaphore cells used by the CPU-Free protocols
//! (one producer, monotone values) and conservative (may under-report races,
//! never falsely reports one through a flag) for multi-writer flags.

use crate::agent::AgentId;
use crate::intern::{Sym, SymPool};
use crate::lock::Mutex;
use crate::sync::{Barrier, Flag};
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Hard cap on retained diagnostics, so a badly broken run cannot grow
/// memory without bound. The count of *detected* problems keeps increasing.
const MAX_DIAGNOSTICS: usize = 256;

/// A sparse vector clock: component id -> logical time.
///
/// Components are allocated dynamically — one per agent, plus one per
/// asynchronous effect — so the clock is a small hash map rather than a
/// fixed-width array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    components: HashMap<u32, u64>,
}

impl VClock {
    /// The empty clock (all components at zero).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Value of one component (zero when absent).
    pub fn get(&self, comp: u32) -> u64 {
        self.components.get(&comp).copied().unwrap_or(0)
    }

    /// Increment a component, returning its new value.
    pub fn tick(&mut self, comp: u32) -> u64 {
        let v = self.components.entry(comp).or_insert(0);
        *v += 1;
        *v
    }

    /// Component-wise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        for (&c, &v) in &other.components {
            let e = self.components.entry(c).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    /// `true` when every component of `self` is `<=` the one in `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.components.iter().all(|(&c, &v)| v <= other.get(c))
    }
}

/// What kind of synchronization an [`HbEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbEventKind {
    /// An agent spawned a child agent.
    Spawn {
        /// The spawned agent.
        child: AgentId,
    },
    /// An agent issued a signal (immediate or scheduled) on a flag.
    SignalSend {
        /// The signalled flag.
        flag: Flag,
    },
    /// A (possibly deferred) signal was applied to its flag.
    SignalDeliver {
        /// The signalled flag.
        flag: Flag,
    },
    /// A blocked (or immediately satisfied) flag wait completed.
    WaitSatisfied {
        /// The awaited flag.
        flag: Flag,
    },
    /// A barrier released this agent (one event per participant).
    BarrierRelease {
        /// The releasing barrier.
        barrier: Barrier,
    },
    /// An asynchronous effect (nbi put / DMA) was issued; it owns the fresh
    /// clock component `token`.
    AsyncIssue {
        /// The effect's clock component.
        token: u32,
    },
    /// The agent absorbed `tokens` outstanding async effects (a `quiet`).
    Absorb {
        /// How many effects were absorbed.
        tokens: usize,
    },
}

/// One node of the happens-before graph.
///
/// Event ids increase monotonically in scheduler execution order, and every
/// dependency edge points from a smaller id to a larger one — the stream is
/// a topological order of the graph by construction, which the property
/// tests verify against virtual time.
#[derive(Debug, Clone)]
pub struct HbEvent {
    /// Monotone event id (position in the stream).
    pub id: u64,
    /// Virtual time at which the event occurred.
    pub time: SimTime,
    /// The agent the event belongs to (`None` for detached deliveries).
    pub agent: Option<AgentId>,
    /// What happened.
    pub kind: HbEventKind,
    /// Ids of events that happen-before this one (direct edges only).
    pub deps: Vec<u64>,
}

/// Classification of a checker diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// Two conflicting memory accesses unordered by happens-before.
    DataRace,
    /// A data race in which one endpoint is the in-flight source read of an
    /// `nbi` put — the source buffer was reused before delivery.
    NbiSourceReuse,
    /// A `signal_wait` that was never satisfied by a matching
    /// put-with-signal.
    LostSignal,
    /// Neighboring PEs' iteration counters diverged by more than 1.
    IterationDivergence,
    /// A `signal_wait` with no structurally matching producer (wrong flag,
    /// wrong target PE, or a counter value the producers never reach), or a
    /// signal set that no PE ever waits on. Static-analysis vocabulary; the
    /// dynamic checker reports the runtime shadow of these as
    /// [`DiagKind::LostSignal`].
    UnmatchedSignalWait,
    /// A consumer tasklet reads remote-fed (halo) cells that no producer put
    /// covers: the cells would hold stale data on every schedule.
    HaloCoverageGap,
    /// A symmetric-heap operation (put/get) targeting an array whose storage
    /// class is not `GpuNvshmem` — the remote side has no such allocation.
    StorageClassViolation,
    /// A cycle of `signal_wait`s across PEs in which every wait's sole
    /// producer sits behind the next wait: a guaranteed deadlock on all
    /// schedules.
    WaitCycle,
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagKind::DataRace => "data race",
            DiagKind::NbiSourceReuse => "nbi source reuse",
            DiagKind::LostSignal => "lost signal",
            DiagKind::IterationDivergence => "iteration divergence",
            DiagKind::UnmatchedSignalWait => "unmatched signal wait",
            DiagKind::HaloCoverageGap => "halo coverage gap",
            DiagKind::StorageClassViolation => "storage class violation",
            DiagKind::WaitCycle => "wait cycle",
        };
        f.write_str(s)
    }
}

/// One checker finding, with a human-readable message naming both endpoints.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The finding's classification.
    pub kind: DiagKind,
    /// Virtual time at which the finding was made.
    pub time: SimTime,
    /// Full description, naming both endpoints of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.kind, self.time, self.message)
    }
}

/// The clock stamp of an asynchronous effect: the issuer's clock at issue
/// time plus a fresh component owned by the effect itself.
///
/// Obtained from [`HbTracker::async_begin`]; attach it to the effect's
/// accesses ([`HbTracker::record_access_async`]), to its completion signal
/// ([`AgentCtx::schedule_signal_with_stamp`](crate::AgentCtx::schedule_signal_with_stamp)),
/// and finally return it to the issuer via [`HbTracker::absorb`] when the
/// issuer performs a `quiet`.
#[derive(Debug, Clone)]
pub struct AsyncClock {
    pub(crate) clock: VClock,
    pub(crate) event: u64,
    pub(crate) token: u32,
}

struct Access {
    /// Clock component of the issuing agent / async effect.
    owner: u32,
    /// Owner-component value at the access.
    stamp: u64,
    /// Full clock of the access.
    clock: VClock,
    write: bool,
    nbi_src: bool,
    range: (usize, usize),
    /// Interned endpoint / label names — accesses are recorded on the hot
    /// path (one per memory effect), so they carry 4-byte keys and the text
    /// is resolved only when a race is actually reported.
    who: Sym,
    label: Sym,
    time: SimTime,
}

impl Access {
    /// `self` happens-before `other` (epoch test: `other` saw our stamp).
    fn hb(&self, other: &Access) -> bool {
        other.clock.get(self.owner) >= self.stamp
    }

    fn describe(&self, pool: &SymPool) -> String {
        format!(
            "{} {} [{}..{}) by `{}` ({}) at {}",
            if self.nbi_src { "nbi-source" } else { "" },
            if self.write { "write" } else { "read" },
            self.range.0,
            self.range.1,
            pool.resolve(self.who),
            pool.resolve(self.label),
            self.time,
        )
        .trim_start()
        .to_string()
    }
}

#[derive(Default)]
struct HbInner {
    next_comp: u32,
    agent_comp: HashMap<usize, u32>,
    clocks: HashMap<usize, VClock>,
    flag_clocks: HashMap<usize, VClock>,
    /// Event ids of deliveries that contributed to each flag's clock.
    flag_events: HashMap<usize, Vec<u64>>,
    last_agent_event: HashMap<usize, u64>,
    /// Spawn event id to attach to the child's first event.
    pending_parent: HashMap<usize, u64>,
    events: Vec<HbEvent>,
    accesses: HashMap<u64, Vec<Access>>,
    iters: HashMap<usize, (u64, String)>,
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
    n_accesses: usize,
    /// Tracker-local interner for access endpoint/label names.
    pool: SymPool,
}

impl HbInner {
    fn comp_of(&mut self, agent: AgentId) -> u32 {
        if let Some(&c) = self.agent_comp.get(&agent.0) {
            return c;
        }
        let c = self.next_comp;
        self.next_comp += 1;
        self.agent_comp.insert(agent.0, c);
        self.clocks.entry(agent.0).or_default().tick(c);
        c
    }

    fn event(
        &mut self,
        agent: Option<AgentId>,
        time: SimTime,
        kind: HbEventKind,
        mut deps: Vec<u64>,
    ) -> u64 {
        let id = self.events.len() as u64;
        if let Some(a) = agent {
            if let Some(&prev) = self.last_agent_event.get(&a.0) {
                deps.push(prev);
            }
            if let Some(spawn) = self.pending_parent.remove(&a.0) {
                deps.push(spawn);
            }
            self.last_agent_event.insert(a.0, id);
        }
        deps.sort_unstable();
        deps.dedup();
        self.events.push(HbEvent {
            id,
            time,
            agent,
            kind,
            deps,
        });
        id
    }

    fn diagnose(&mut self, kind: DiagKind, time: SimTime, message: String) {
        if self.diagnostics.len() >= MAX_DIAGNOSTICS {
            self.suppressed += 1;
            return;
        }
        self.diagnostics.push(Diagnostic {
            kind,
            time,
            message,
        });
    }

    fn insert_access(&mut self, loc: u64, loc_name: &str, access: Access) {
        self.n_accesses += 1;
        let prior = self.accesses.entry(loc).or_default();
        let mut findings = Vec::new();
        for a in prior.iter() {
            let overlap = a.range.0 < access.range.1 && access.range.0 < a.range.1;
            if !overlap || !(a.write || access.write) {
                continue;
            }
            if a.hb(&access) || access.hb(a) {
                continue;
            }
            let kind = if (a.nbi_src && access.write) || (access.nbi_src && a.write) {
                DiagKind::NbiSourceReuse
            } else {
                DiagKind::DataRace
            };
            findings.push((
                kind,
                format!(
                    "unordered conflicting accesses to `{}`: {} vs {}",
                    loc_name,
                    a.describe(&self.pool),
                    access.describe(&self.pool)
                ),
            ));
        }
        let t = access.time;
        prior.push(access);
        for (kind, msg) in findings {
            self.diagnose(kind, t, msg);
        }
    }
}

/// The happens-before tracker: event stream, vector clocks, race detector
/// and conformance rules. Created through
/// [`Engine::enable_hb`](crate::Engine::enable_hb); all methods are cheap
/// no-ops when the tracker is simply never instantiated.
#[derive(Default)]
pub struct HbTracker {
    inner: Mutex<HbInner>,
}

impl HbTracker {
    /// Create an empty tracker.
    pub fn new() -> HbTracker {
        HbTracker::default()
    }

    // ---- engine hooks -----------------------------------------------------

    /// A child agent was spawned: it inherits the parent's clock.
    pub(crate) fn on_spawn(&self, parent: Option<AgentId>, child: AgentId, time: SimTime) {
        let mut g = self.inner.lock();
        let child_comp = g.comp_of(child);
        if let Some(p) = parent {
            let pc = g.comp_of(p);
            let mut clock = {
                let c = g.clocks.entry(p.0).or_default();
                c.tick(pc);
                c.clone()
            };
            clock.tick(child_comp);
            g.clocks.insert(child.0, clock);
            let ev = g.event(Some(p), time, HbEventKind::Spawn { child }, Vec::new());
            g.pending_parent.insert(child.0, ev);
        }
    }

    /// An agent issued a signal on `flag`; returns the stamp the delivery
    /// must carry (the sender's clock after a tick).
    pub(crate) fn on_schedule_signal(
        &self,
        agent: AgentId,
        flag: Flag,
        time: SimTime,
    ) -> AsyncClock {
        let mut g = self.inner.lock();
        let comp = g.comp_of(agent);
        let clock = {
            let c = g.clocks.entry(agent.0).or_default();
            c.tick(comp);
            c.clone()
        };
        let event = g.event(
            Some(agent),
            time,
            HbEventKind::SignalSend { flag },
            Vec::new(),
        );
        AsyncClock {
            clock,
            event,
            token: comp,
        }
    }

    /// A signal (with its sender/effect stamp) was applied to `flag`.
    pub(crate) fn on_signal_deliver(&self, flag: Flag, stamp: &AsyncClock, time: SimTime) {
        let mut g = self.inner.lock();
        g.flag_clocks.entry(flag.0).or_default().join(&stamp.clock);
        let ev = g.event(
            None,
            time,
            HbEventKind::SignalDeliver { flag },
            vec![stamp.event],
        );
        g.flag_events.entry(flag.0).or_default().push(ev);
    }

    /// An agent's wait on `flag` is satisfied: it inherits the flag's clock.
    pub(crate) fn on_wait_satisfied(&self, agent: AgentId, flag: Flag, time: SimTime) {
        let mut g = self.inner.lock();
        let comp = g.comp_of(agent);
        let fc = g.flag_clocks.get(&flag.0).cloned().unwrap_or_default();
        {
            let c = g.clocks.entry(agent.0).or_default();
            c.join(&fc);
            c.tick(comp);
        }
        let deps = g.flag_events.get(&flag.0).cloned().unwrap_or_default();
        g.event(Some(agent), time, HbEventKind::WaitSatisfied { flag }, deps);
    }

    /// A barrier released all `agents`: each inherits the join of all.
    pub(crate) fn on_barrier_release(&self, agents: &[AgentId], barrier: Barrier, time: SimTime) {
        let mut g = self.inner.lock();
        let mut joined = VClock::new();
        let mut deps = Vec::new();
        for &a in agents {
            g.comp_of(a);
            joined.join(g.clocks.entry(a.0).or_default());
            if let Some(&prev) = g.last_agent_event.get(&a.0) {
                deps.push(prev);
            }
        }
        for &a in agents {
            let comp = g.comp_of(a);
            let c = g.clocks.entry(a.0).or_default();
            *c = joined.clone();
            c.tick(comp);
            g.event(
                Some(a),
                time,
                HbEventKind::BarrierRelease { barrier },
                deps.clone(),
            );
        }
    }

    // ---- async effects ----------------------------------------------------

    /// Begin an asynchronous effect issued by `agent`: allocates a fresh
    /// clock component for the effect and returns its stamp.
    pub fn async_begin(&self, agent: AgentId, time: SimTime) -> AsyncClock {
        let mut g = self.inner.lock();
        let comp = g.comp_of(agent);
        let token = g.next_comp;
        g.next_comp += 1;
        let mut clock = {
            let c = g.clocks.entry(agent.0).or_default();
            c.tick(comp);
            c.clone()
        };
        clock.tick(token);
        let event = g.event(
            Some(agent),
            time,
            HbEventKind::AsyncIssue { token },
            Vec::new(),
        );
        AsyncClock {
            clock,
            event,
            token,
        }
    }

    /// The issuer waited for its outstanding effects (a `quiet`): join the
    /// effects' components back into the issuer's clock.
    pub fn absorb(&self, agent: AgentId, effects: &[AsyncClock], time: SimTime) {
        if effects.is_empty() {
            return;
        }
        let mut g = self.inner.lock();
        let comp = g.comp_of(agent);
        {
            let c = g.clocks.entry(agent.0).or_default();
            for e in effects {
                c.join(&e.clock);
            }
            c.tick(comp);
        }
        let deps = effects.iter().map(|e| e.event).collect();
        g.event(
            Some(agent),
            time,
            HbEventKind::Absorb {
                tokens: effects.len(),
            },
            deps,
        );
    }

    // ---- memory effects ---------------------------------------------------

    /// Record a synchronous access by `agent` to elements `[lo, hi)` of the
    /// location `loc`, racing it against all conflicting prior accesses.
    #[allow(clippy::too_many_arguments)]
    pub fn record_access(
        &self,
        agent: AgentId,
        who: &str,
        time: SimTime,
        loc: u64,
        loc_name: &str,
        lo: usize,
        hi: usize,
        write: bool,
        label: &str,
    ) {
        let mut g = self.inner.lock();
        let comp = g.comp_of(agent);
        let (stamp, clock) = {
            let c = g.clocks.entry(agent.0).or_default();
            let s = c.tick(comp);
            (s, c.clone())
        };
        let who = g.pool.intern(who);
        let label = g.pool.intern(label);
        g.insert_access(
            loc,
            loc_name,
            Access {
                owner: comp,
                stamp,
                clock,
                write,
                nbi_src: false,
                range: (lo, hi),
                who,
                label,
                time,
            },
        );
    }

    /// Record an access performed by an asynchronous effect (stamped with
    /// the effect's [`AsyncClock`] rather than any agent's current clock).
    /// `nbi_src` marks the in-flight read of an nbi put's source buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn record_access_async(
        &self,
        stamp: &AsyncClock,
        who: &str,
        time: SimTime,
        loc: u64,
        loc_name: &str,
        lo: usize,
        hi: usize,
        write: bool,
        nbi_src: bool,
        label: &str,
    ) {
        let mut g = self.inner.lock();
        let who = g.pool.intern(who);
        let label = g.pool.intern(label);
        g.insert_access(
            loc,
            loc_name,
            Access {
                owner: stamp.token,
                stamp: stamp.clock.get(stamp.token),
                clock: stamp.clock.clone(),
                write,
                nbi_src,
                range: (lo, hi),
                who,
                label,
                time,
            },
        );
    }

    // ---- conformance ------------------------------------------------------

    /// Report that `pe` committed iteration `t`. Neighboring PEs (`pe ± 1`)
    /// must never be more than one iteration apart at commit points.
    pub fn record_iteration(&self, pe: usize, t: u64, who: &str, time: SimTime) {
        let mut g = self.inner.lock();
        for nb in [pe.wrapping_sub(1), pe + 1] {
            if nb == pe {
                continue;
            }
            if let Some((tn, who_n)) = g.iters.get(&nb).cloned() {
                if t.abs_diff(tn) > 1 {
                    g.diagnose(
                        DiagKind::IterationDivergence,
                        time,
                        format!(
                            "iteration counters diverged by {}: pe{pe} (`{who}`) at \
                             iteration {t} vs pe{nb} (`{who_n}`) at iteration {tn}",
                            t.abs_diff(tn)
                        ),
                    );
                }
            }
        }
        g.iters.insert(pe, (t, who.to_string()));
    }

    /// Report a wait that was still blocked when the simulation ended — a
    /// lost signal. Names the waiter and, when declared, the peer it
    /// expected the matching put-with-signal from.
    pub fn note_unsatisfied_wait(
        &self,
        waiter: &str,
        identity: Option<&str>,
        blocked_on: &str,
        expected_from: Option<&str>,
        time: SimTime,
    ) {
        let mut g = self.inner.lock();
        let who = match identity {
            Some(id) => format!("`{id}` (agent `{waiter}`)"),
            None => format!("agent `{waiter}`"),
        };
        let from = match expected_from {
            Some(peer) => format!(" — expected matching put-with-signal from `{peer}`"),
            None => String::new(),
        };
        g.diagnose(
            DiagKind::LostSignal,
            time,
            format!("unsatisfied signal_wait: {who} still blocked on {blocked_on}{from}"),
        );
    }

    // ---- reporting --------------------------------------------------------

    /// Clone of the structured happens-before event stream.
    pub fn events(&self) -> Vec<HbEvent> {
        self.inner.lock().events.clone()
    }

    /// Clone of all diagnostics found so far.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.inner.lock().diagnostics.clone()
    }

    /// `true` when no diagnostic has been raised.
    pub fn is_clean(&self) -> bool {
        self.inner.lock().diagnostics.is_empty()
    }

    /// Total memory accesses recorded (race-checked pairs scale with this).
    pub fn access_count(&self) -> usize {
        self.inner.lock().n_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(
        owner: u32,
        stamp: u64,
        clock: &[(u32, u64)],
        write: bool,
        range: (usize, usize),
    ) -> Access {
        let mut c = VClock::new();
        for &(k, v) in clock {
            for _ in 0..v {
                c.tick(k);
            }
        }
        Access {
            owner,
            stamp,
            clock: c,
            write,
            nbi_src: false,
            range,
            who: Sym::EMPTY,
            label: Sym::EMPTY,
            time: SimTime::ZERO,
        }
    }

    #[test]
    fn vclock_join_and_order() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn epoch_hb_test() {
        // b saw a's stamp -> ordered; disjoint components -> unordered.
        let a = acc(0, 2, &[(0, 2)], true, (0, 4));
        let b = acc(1, 1, &[(0, 2), (1, 1)], false, (2, 6));
        assert!(a.hb(&b));
        assert!(!b.hb(&a));
        let c = acc(2, 1, &[(2, 1)], true, (0, 4));
        assert!(!a.hb(&c) && !c.hb(&a));
    }

    #[test]
    fn race_requires_overlap_and_write() {
        let t = HbTracker::new();
        // Two unordered reads: no race.
        t.record_access_async(
            &AsyncClock {
                clock: {
                    let mut c = VClock::new();
                    c.tick(10);
                    c
                },
                event: 0,
                token: 10,
            },
            "a",
            SimTime::ZERO,
            1,
            "buf",
            0,
            4,
            false,
            false,
            "r1",
        );
        t.record_access_async(
            &AsyncClock {
                clock: {
                    let mut c = VClock::new();
                    c.tick(11);
                    c
                },
                event: 1,
                token: 11,
            },
            "b",
            SimTime::ZERO,
            1,
            "buf",
            2,
            6,
            false,
            false,
            "r2",
        );
        assert!(t.is_clean());
        // An unordered overlapping write races with both reads.
        t.record_access_async(
            &AsyncClock {
                clock: {
                    let mut c = VClock::new();
                    c.tick(12);
                    c
                },
                event: 2,
                token: 12,
            },
            "c",
            SimTime::ZERO,
            1,
            "buf",
            3,
            4,
            true,
            false,
            "w",
        );
        let d = t.diagnostics();
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.kind == DiagKind::DataRace));
        assert!(d[0].message.contains("buf"));
    }

    #[test]
    fn iteration_divergence_detected() {
        let t = HbTracker::new();
        t.record_iteration(0, 1, "pe0", SimTime::ZERO);
        t.record_iteration(1, 2, "pe1", SimTime::ZERO);
        assert!(t.is_clean());
        t.record_iteration(2, 4, "pe2", SimTime::ZERO);
        let d = t.diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DiagKind::IterationDivergence);
        assert!(d[0].message.contains("pe1") && d[0].message.contains("pe2"));
    }

    #[test]
    fn lost_signal_names_both_endpoints() {
        let t = HbTracker::new();
        t.note_unsatisfied_wait(
            "host1",
            Some("pe1"),
            "flag #3 Ge 1",
            Some("pe0"),
            SimTime::ZERO,
        );
        let d = t.diagnostics();
        assert_eq!(d[0].kind, DiagKind::LostSignal);
        assert!(d[0].message.contains("pe1") && d[0].message.contains("pe0"));
    }
}
