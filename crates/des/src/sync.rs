//! Synchronization primitive *handles* used by agents.
//!
//! The actual state (flag values, waiter lists, barrier membership) lives
//! inside the engine so that every operation is mediated by the deterministic
//! scheduler. Handles are small copyable ids.

/// Comparison used by flag waits, mirroring `NVSHMEM_CMP_*` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// Wait until `flag == value`.
    Eq,
    /// Wait until `flag != value`.
    Ne,
    /// Wait until `flag >= value`.
    Ge,
    /// Wait until `flag > value`.
    Gt,
    /// Wait until `flag <= value`.
    Le,
    /// Wait until `flag < value`.
    Lt,
}

impl Cmp {
    /// Evaluate `lhs <cmp> rhs`.
    #[inline]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Lt => lhs < rhs,
        }
    }
}

/// How a signal updates a flag, mirroring `NVSHMEM_SIGNAL_{SET,ADD}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalOp {
    /// `flag = value`.
    Set,
    /// `flag += value`.
    Add,
}

impl SignalOp {
    /// Apply the operation to a current value.
    #[inline]
    pub fn apply(self, current: u64, value: u64) -> u64 {
        match self {
            SignalOp::Set => value,
            SignalOp::Add => current.wrapping_add(value),
        }
    }
}

/// Handle to an engine-owned 64-bit signal flag.
///
/// Flags are the universal completion/notification mechanism: DMA-completion
/// markers, NVSHMEM signal cells, stream doorbells, CUDA events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flag(pub(crate) usize);

/// Handle to an engine-owned reusable N-party barrier (e.g. `grid.sync()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Barrier(pub(crate) usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_all_variants() {
        assert!(Cmp::Eq.eval(3, 3) && !Cmp::Eq.eval(3, 4));
        assert!(Cmp::Ne.eval(3, 4) && !Cmp::Ne.eval(3, 3));
        assert!(Cmp::Ge.eval(4, 3) && Cmp::Ge.eval(3, 3) && !Cmp::Ge.eval(2, 3));
        assert!(Cmp::Gt.eval(4, 3) && !Cmp::Gt.eval(3, 3));
        assert!(Cmp::Le.eval(3, 3) && Cmp::Le.eval(2, 3) && !Cmp::Le.eval(4, 3));
        assert!(Cmp::Lt.eval(2, 3) && !Cmp::Lt.eval(3, 3));
    }

    #[test]
    fn signal_op_apply() {
        assert_eq!(SignalOp::Set.apply(10, 3), 3);
        assert_eq!(SignalOp::Add.apply(10, 3), 13);
        assert_eq!(SignalOp::Add.apply(u64::MAX, 1), 0); // wraps, never panics
    }
}
