//! # sim-des — deterministic virtual-time discrete-event engine
//!
//! The substrate every other crate in this workspace runs on. It provides:
//!
//! * a **virtual clock** with nanosecond resolution ([`SimTime`], [`SimDur`]);
//! * **agents** — imperative simulated routines written as plain closures,
//!   each on its own OS thread but scheduled strictly one-at-a-time for full
//!   determinism ([`Engine::spawn`], [`AgentCtx`]);
//! * **flags** (64-bit signal cells with comparison waits, mirroring the
//!   NVSHMEM signaling API) and reusable **barriers** (mirroring CUDA
//!   cooperative-groups `grid.sync()`);
//! * serialized **resources** — virtual-time occupancy bookkeeping for
//!   shared channels (interconnect links), so concurrent transfers on the
//!   same hop queue instead of overlapping for free ([`Resource`]);
//! * **span traces** with overlap analysis — the simulator's replacement for
//!   Nsight timelines ([`Trace`]);
//! * **deadlock detection** with per-agent diagnostics, used by the failure
//!   injection tests.
//!
//! See the crate-level docs of `gpu-sim` for how a multi-GPU node is modeled
//! on top of these primitives.

#![warn(missing_docs)]

mod agent;
pub mod batch;
pub mod chaos;
mod engine;
pub mod fault;
pub mod hb;
pub mod intern;
pub mod lock;
mod resource;
pub mod shard;
mod sync;
mod time;
pub mod trace;

pub use agent::{AgentCtx, AgentId, WaitTimedOut};
pub use batch::{default_jobs, env_jobs, par_map};
pub use chaos::{
    classify_error, plan_from_json, plan_to_json, shrink, string_field, ChaosOutcome, FaultAtom,
};
pub use engine::{BlockedInfo, Engine, RunStatus, SimError};
pub use fault::{mix64, CrashFault, DropFault, FaultPlan, FaultState, LinkFault, StragglerFault};
pub use hb::{AsyncClock, DiagKind, Diagnostic, HbEvent, HbEventKind, HbTracker, VClock};
pub use intern::{Label, Sym, SymPool};
pub use resource::{Reservation, Resource, ResourceStats};
pub use shard::{RemoteFlag, ShardedEngine, XPort};
pub use sync::{Barrier, Cmp, Flag, SignalOp};
pub use time::{ms, ns, us, SimDur, SimTime};
pub use trace::{Category, Trace, TraceSpan};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_engine_finishes_at_zero() {
        let engine = Engine::new();
        assert_eq!(engine.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn single_agent_advances_clock() {
        let engine = Engine::new();
        engine.spawn("a", |ctx| {
            ctx.advance(us(10.0));
            ctx.advance(us(5.0));
        });
        assert_eq!(engine.run().unwrap(), SimTime::ZERO + us(15.0));
    }

    #[test]
    fn two_agents_interleave_deterministically() {
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("fast", move |ctx| {
            ctx.advance(us(1.0));
            ctx.signal(f, SignalOp::Add, 1);
            ctx.advance(us(1.0));
            ctx.signal(f, SignalOp::Add, 1);
        });
        engine.spawn("watcher", move |ctx| {
            ctx.wait_flag(f, Cmp::Ge, 2);
            assert_eq!(ctx.now(), SimTime::ZERO + us(2.0));
        });
        engine.run().unwrap();
        assert_eq!(engine.flag_value(f), 2);
    }

    #[test]
    fn wait_already_satisfied_does_not_block() {
        let engine = Engine::new();
        let f = engine.flag(7);
        engine.spawn("a", move |ctx| {
            ctx.wait_flag(f, Cmp::Ge, 5);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        engine.run().unwrap();
    }

    #[test]
    fn scheduled_signal_fires_later() {
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("dma", move |ctx| {
            ctx.schedule_signal(f, SignalOp::Set, 1, us(30.0));
        });
        engine.spawn("waiter", move |ctx| {
            ctx.wait_flag(f, Cmp::Eq, 1);
            assert_eq!(ctx.now(), SimTime::ZERO + us(30.0));
        });
        assert_eq!(engine.run().unwrap(), SimTime::ZERO + us(30.0));
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let engine = Engine::new();
        let b = engine.barrier(3);
        for (i, delay) in [3.0, 9.0, 6.0].into_iter().enumerate() {
            engine.spawn(format!("tb{i}"), move |ctx| {
                ctx.advance(us(delay));
                ctx.barrier(b);
                assert_eq!(ctx.now(), SimTime::ZERO + us(9.0));
            });
        }
        engine.run().unwrap();
    }

    #[test]
    fn barrier_is_reusable_across_iterations() {
        let engine = Engine::new();
        let b = engine.barrier(2);
        for i in 0..2 {
            engine.spawn(format!("a{i}"), move |ctx| {
                for iter in 1..=5u64 {
                    ctx.advance(us(1.0 + i as f64));
                    ctx.barrier(b);
                    // Slower agent (2 µs) gates each round.
                    assert_eq!(ctx.now(), SimTime::ZERO + us(2.0) * iter);
                }
            });
        }
        engine.run().unwrap();
    }

    #[test]
    fn deadlock_is_detected_with_diagnostics() {
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("stuck", move |ctx| {
            ctx.wait_flag(f, Cmp::Ge, 1); // nobody ever signals
        });
        match engine.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("stuck"));
                assert!(blocked[0].contains("flag"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn barrier_short_party_deadlocks() {
        let engine = Engine::new();
        let b = engine.barrier(2);
        engine.spawn("alone", move |ctx| ctx.barrier(b));
        assert!(matches!(engine.run(), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn agent_panic_is_reported() {
        let engine = Engine::new();
        engine.spawn("boom", |_ctx| panic!("injected failure"));
        match engine.run() {
            Err(SimError::AgentPanic { agent, message }) => {
                assert_eq!(agent, "boom");
                assert!(message.contains("injected failure"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn nested_spawn_runs_child() {
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("parent", move |ctx| {
            ctx.advance(us(2.0));
            ctx.spawn("child", move |c| {
                assert_eq!(c.now(), SimTime::ZERO + us(2.0));
                c.advance(us(3.0));
                c.signal(f, SignalOp::Set, 42);
            });
            ctx.wait_flag(f, Cmp::Eq, 42);
            assert_eq!(ctx.now(), SimTime::ZERO + us(5.0));
        });
        engine.run().unwrap();
    }

    #[test]
    fn busy_records_trace_span() {
        let engine = Engine::new();
        engine.spawn("worker", |ctx| {
            ctx.busy(Category::Compute, "sweep", us(12.0));
        });
        engine.run().unwrap();
        let trace = engine.trace();
        assert_eq!(trace.len(), 1);
        let s = &trace.spans()[0];
        assert_eq!(s.category, Category::Compute);
        assert_eq!(s.dur(), us(12.0));
        assert_eq!(&*trace.resolve(s.agent_name), "worker");
    }

    #[test]
    fn trace_can_be_disabled() {
        let engine = Engine::new();
        engine.set_trace_enabled(false);
        engine.spawn("quiet", |ctx| ctx.busy(Category::Compute, "x", us(1.0)));
        engine.run().unwrap();
        assert!(engine.trace().is_empty());
    }

    #[test]
    fn yield_orders_same_time_work() {
        // `second` is spawned later; when `first` yields at t=0, `second`
        // (already queued) must run before `first` resumes.
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("first", move |ctx| {
            ctx.yield_now();
            assert_eq!(ctx.flag_value(f), 1);
        });
        engine.spawn("second", move |ctx| {
            ctx.signal(f, SignalOp::Set, 1);
        });
        engine.run().unwrap();
    }

    #[test]
    fn determinism_identical_end_times() {
        fn run_once() -> (u64, u64) {
            let engine = Engine::new();
            let f = engine.flag(0);
            let b = engine.barrier(4);
            for i in 0..4u64 {
                engine.spawn(format!("w{i}"), move |ctx| {
                    for iter in 0..50u64 {
                        ctx.advance(ns(100 + 37 * i + iter % 7));
                        ctx.signal(f, SignalOp::Add, 1);
                        ctx.barrier(b);
                    }
                });
            }
            let end = engine.run().unwrap();
            (end.as_nanos(), engine.flag_value(f))
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn scheduled_call_runs_before_equal_time_signal() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let engine = Engine::new();
        let f = engine.flag(0);
        let wrote = Arc::new(AtomicBool::new(false));
        let w = Arc::clone(&wrote);
        engine.spawn("dma", move |ctx| {
            // "Copy" lands at t=10, completion signal at the same instant but
            // enqueued after — waiters must observe the copy.
            ctx.schedule_call(us(10.0), move || w.store(true, Ordering::SeqCst));
            ctx.schedule_signal(f, SignalOp::Set, 1, us(10.0));
        });
        let w2 = Arc::clone(&wrote);
        engine.spawn("reader", move |ctx| {
            ctx.wait_flag(f, Cmp::Eq, 1);
            assert!(w2.load(Ordering::SeqCst), "data visible before signal");
        });
        engine.run().unwrap();
    }

    #[test]
    fn deadline_wait_times_out_at_exact_deadline() {
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("bounded", move |ctx| {
            let deadline = ctx.now() + us(25.0);
            let r = ctx.wait_flag_until(f, Cmp::Ge, 1, deadline);
            assert_eq!(r, Err(WaitTimedOut { deadline }));
            // Resumes at exactly the deadline, never later.
            assert_eq!(ctx.now(), deadline);
        });
        assert_eq!(engine.run().unwrap(), SimTime::ZERO + us(25.0));
    }

    #[test]
    fn unexpired_deadline_does_not_distort_end_time() {
        // The wait completes at t=5 with a deadline at t=1000; the stale
        // timeout event must NOT drag the end time to 1000.
        let engine = Engine::new();
        let f = engine.flag(0);
        engine.spawn("producer", move |ctx| {
            ctx.advance(us(5.0));
            ctx.signal(f, SignalOp::Set, 1);
        });
        engine.spawn("consumer", move |ctx| {
            let deadline = ctx.now() + us(1000.0);
            assert_eq!(ctx.wait_flag_until(f, Cmp::Ge, 1, deadline), Ok(()));
            assert_eq!(ctx.now(), SimTime::ZERO + us(5.0));
        });
        assert_eq!(engine.run().unwrap(), SimTime::ZERO + us(5.0));
    }

    #[test]
    fn barrier_until_withdraws_arrival_on_timeout() {
        // First arrival gives up at t=10; the partner arrives at t=20 and
        // waits; the first agent re-arrives at t=30 and both release.
        let engine = Engine::new();
        let b = engine.barrier(2);
        engine.spawn("flaky", move |ctx| {
            let r = ctx.barrier_until(b, ctx.now() + us(10.0));
            assert!(r.is_err());
            ctx.advance(us(20.0));
            ctx.barrier(b);
            assert_eq!(ctx.now(), SimTime::ZERO + us(30.0));
        });
        engine.spawn("steady", move |ctx| {
            ctx.advance(us(20.0));
            ctx.barrier(b);
            assert_eq!(ctx.now(), SimTime::ZERO + us(30.0));
        });
        engine.run().unwrap();
    }

    #[test]
    fn wait_for_cycle_is_reported_in_deadlock() {
        let engine = Engine::new();
        let fa = engine.flag(0);
        let fb = engine.flag(0);
        engine.spawn("left", move |ctx| {
            ctx.set_identity("pe0");
            ctx.wait_flag_from(fa, Cmp::Ge, 1, "pe1");
        });
        engine.spawn("right", move |ctx| {
            ctx.set_identity("pe1");
            ctx.wait_flag_from(fb, Cmp::Ge, 1, "pe0");
        });
        match engine.run() {
            Err(SimError::Deadlock { cycle, .. }) => {
                assert_eq!(cycle.len(), 2);
                assert!(cycle.contains(&"left".to_string()));
                assert!(cycle.contains(&"right".to_string()));
            }
            other => panic!("expected deadlock with cycle, got {other:?}"),
        }
    }

    #[test]
    fn abort_surfaces_structured_error() {
        let engine = Engine::new();
        engine.spawn("watchdog", move |ctx| {
            ctx.advance(us(7.0));
            let err = ctx.timeout_error("heartbeat pe2", ctx.now());
            ctx.abort(err);
        });
        engine.spawn("hung", move |ctx| {
            // Infinite busy loop the watchdog must terminate.
            loop {
                ctx.advance(us(1.0));
            }
        });
        match engine.run() {
            Err(SimError::Timeout {
                agent, waiting_on, ..
            }) => {
                assert_eq!(agent, "watchdog");
                assert!(waiting_on.contains("pe2"));
            }
            other => panic!("expected timeout abort, got {other:?}"),
        }
    }

    #[test]
    fn signal_wait_semaphore_protocol() {
        // The paper's §4.1.1 semaphore: neighbors signal availability of halo
        // for iteration t by setting the flag to t+1; waiters compare >= t+1.
        let engine = Engine::new();
        let flag_ab = engine.flag(0);
        let flag_ba = engine.flag(0);
        let iters = 20u64;
        engine.spawn("gpu_a", move |ctx| {
            for t in 1..=iters {
                ctx.advance(us(2.0));
                ctx.signal(flag_ab, SignalOp::Set, t);
                ctx.wait_flag(flag_ba, Cmp::Ge, t);
            }
        });
        engine.spawn("gpu_b", move |ctx| {
            for t in 1..=iters {
                ctx.advance(us(3.0));
                ctx.signal(flag_ba, SignalOp::Set, t);
                ctx.wait_flag(flag_ab, Cmp::Ge, t);
            }
        });
        let end = engine.run().unwrap();
        // Lock-step: the slower side (3 µs) dominates each iteration.
        assert_eq!(end, SimTime::ZERO + us(3.0) * iters);
    }
}
