//! Serialized virtual-time resources: link-occupancy bookkeeping.
//!
//! A [`Resource`] models a physical channel (an NVLink lane, a PCIe bridge
//! uplink, a NIC) that serves at most one transfer at a time at full
//! bandwidth. Callers reserve an interval of occupancy starting no earlier
//! than their current virtual time; if the resource is still busy from an
//! earlier reservation, the new one queues behind it and the caller learns
//! how long it waited. This is what turns the flat per-message cost model
//! into a network where concurrent transfers on a shared hop genuinely
//! contend.
//!
//! Determinism: the engine runs exactly one agent at a time and pops events
//! in `(virtual_time, sequence)` order, so reservations arrive in
//! nondecreasing virtual time and in a deterministic order. A plain mutex
//! around `busy_until` is therefore both race-free and reproducible — there
//! is no retroactive-reservation hazard.

use crate::lock::Mutex;
use crate::time::{SimDur, SimTime};

/// Occupancy state plus lifetime counters for one resource.
#[derive(Debug, Default, Clone, Copy)]
struct Inner {
    /// Virtual time at which the last reservation drains.
    busy_until: SimTime,
    /// Number of reservations ever made.
    reservations: u64,
    /// Total occupied duration across all reservations.
    busy: SimDur,
    /// Total time reservations spent queued behind earlier ones.
    queued: SimDur,
}

/// A serialized virtual-time resource (one link, one channel).
#[derive(Debug, Default)]
pub struct Resource {
    inner: Mutex<Inner>,
}

/// The interval granted by [`Resource::reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually starts serving this transfer
    /// (`max(at, busy_until)` at reservation time).
    pub start: SimTime,
    /// When the resource finishes serving it (`start + dur`).
    pub end: SimTime,
    /// How long the transfer waited behind earlier ones (`start - at`).
    pub queued: SimDur,
}

/// Lifetime usage counters of a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceStats {
    /// Number of reservations made.
    pub reservations: u64,
    /// Total occupied duration.
    pub busy: SimDur,
    /// Total queueing delay imposed on callers.
    pub queued: SimDur,
}

impl Resource {
    /// A fresh, idle resource.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Reserve `dur` of exclusive occupancy starting no earlier than `at`.
    ///
    /// The reservation begins when the resource drains (`max(at,
    /// busy_until)`) and the resource is marked busy until its end. `dur`
    /// may be zero: a zero-length reservation still queues behind earlier
    /// traffic, which is how latency-only control messages (signals) feel
    /// bulk transfers ahead of them on the same wire.
    pub fn reserve(&self, at: SimTime, dur: SimDur) -> Reservation {
        let mut g = self.inner.lock();
        let start = g.busy_until.max(at);
        let end = start + dur;
        let queued = start.since(at);
        g.busy_until = end;
        g.reservations += 1;
        g.busy += dur;
        g.queued += queued;
        Reservation { start, end, queued }
    }

    /// Virtual time at which the resource drains (idle if `<=` now).
    pub fn busy_until(&self) -> SimTime {
        self.inner.lock().busy_until
    }

    /// Lifetime usage counters.
    pub fn stats(&self) -> ResourceStats {
        let g = self.inner.lock();
        ResourceStats {
            reservations: g.reservations,
            busy: g.busy,
            queued: g.queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn idle_resource_starts_immediately() {
        let r = Resource::new();
        let res = r.reserve(SimTime(1000), us(5.0));
        assert_eq!(res.start, SimTime(1000));
        assert_eq!(res.end, SimTime(1000) + us(5.0));
        assert_eq!(res.queued, SimDur::ZERO);
    }

    #[test]
    fn overlapping_reservations_queue() {
        let r = Resource::new();
        let a = r.reserve(SimTime(0), us(10.0));
        assert_eq!(a.queued, SimDur::ZERO);
        // Second transfer arrives mid-flight: it waits for the first.
        let b = r.reserve(SimTime(4000), us(10.0));
        assert_eq!(b.start, a.end);
        assert_eq!(b.queued, us(6.0));
        assert_eq!(b.end, a.end + us(10.0));
    }

    #[test]
    fn drained_resource_does_not_queue() {
        let r = Resource::new();
        let a = r.reserve(SimTime(0), us(10.0));
        let b = r.reserve(a.end + us(1.0), us(3.0));
        assert_eq!(b.queued, SimDur::ZERO);
        assert_eq!(b.start, a.end + us(1.0));
    }

    #[test]
    fn zero_duration_reservation_queues_but_holds_nothing() {
        let r = Resource::new();
        let a = r.reserve(SimTime(0), us(10.0));
        let b = r.reserve(SimTime(0), SimDur::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(b.end, a.end);
        // A third transfer right behind it is not delayed further.
        let c = r.reserve(SimTime(0), us(1.0));
        assert_eq!(c.start, a.end);
    }

    #[test]
    fn stats_accumulate() {
        let r = Resource::new();
        r.reserve(SimTime(0), us(10.0));
        r.reserve(SimTime(0), us(10.0));
        let s = r.stats();
        assert_eq!(s.reservations, 2);
        assert_eq!(s.busy, us(20.0));
        assert_eq!(s.queued, us(10.0));
    }
}
