//! Poison-tolerant `Mutex`/`Condvar` wrappers over `std::sync`.
//!
//! The engine intentionally lets agent closures panic (failure injection is
//! a first-class feature), so a poisoned lock is routine rather than fatal:
//! every acquisition recovers the inner data instead of propagating the
//! poison. The API mirrors `parking_lot` (`lock()` returns the guard
//! directly, `Condvar::wait` takes `&mut guard`) so simulated code stays
//! terse.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose guard survives panics in other holders.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        ))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the underlying `std` guard by value (std's API) while callers keep the
/// `parking_lot`-style `&mut guard` shape.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(5usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }
}
