//! Span traces — the simulator's answer to an Nsight timeline.
//!
//! Every interesting activity (compute, communication, synchronization wait,
//! host API overhead, …) is recorded as a [`TraceSpan`] with a start and end
//! in virtual time. Figures like the paper's "communication overlap ratio"
//! (Fig 2.2b) are *measured* from these spans, not asserted: we take the union
//! of communication spans and intersect it with the union of compute spans.
//!
//! Spans are `Copy` and 40-ish bytes: agent and label names are [`Sym`] keys
//! into the trace's shared [`SymPool`], so recording a span on the hot path
//! allocates nothing. Renderers resolve names back to text at report time.

use crate::agent::AgentId;
use crate::intern::{Sym, SymPool};
use crate::time::{SimDur, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Broad classification of a span, used by overlap/summary analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Numerical work on a device (stencil sweeps, boundary updates, …).
    Compute,
    /// Data movement between devices or host↔device.
    Comm,
    /// Blocking synchronization (stream sync, grid sync, signal waits, barriers).
    Sync,
    /// Kernel-launch latency charged on the host.
    Launch,
    /// Miscellaneous host-side API overhead (enqueue costs, event ops).
    Api,
    /// Anything else.
    Other,
}

impl Category {
    /// Short tag for timeline rendering: uppercase, at most 4 characters,
    /// no padding. Renderers that need fixed-width columns pad explicitly
    /// (e.g. `format!("{:<4}", cat.tag())`).
    pub fn tag(self) -> &'static str {
        match self {
            Category::Compute => "COMP",
            Category::Comm => "COMM",
            Category::Sync => "SYNC",
            Category::Launch => "LNCH",
            Category::Api => "API",
            Category::Other => "OTHR",
        }
    }

    /// All categories, for exhaustive sweeps in tests and renderers.
    pub const ALL: [Category; 6] = [
        Category::Compute,
        Category::Comm,
        Category::Sync,
        Category::Launch,
        Category::Api,
        Category::Other,
    ];
}

/// One closed interval of activity attributed to an agent.
///
/// Names are interned [`Sym`] keys; resolve them through the owning trace
/// ([`Trace::resolve`]) or its [`Trace::pool`].
#[derive(Debug, Clone, Copy)]
pub struct TraceSpan {
    /// The agent that performed the activity.
    pub agent: AgentId,
    /// Interned agent name (e.g. `"gpu3.comm_top"`).
    pub agent_name: Sym,
    /// Start of the activity.
    pub start: SimTime,
    /// End of the activity (`end >= start`).
    pub end: SimTime,
    /// Classification for analyses.
    pub category: Category,
    /// Interned free-form label (e.g. `"halo put -> gpu2"`).
    pub label: Sym,
}

impl TraceSpan {
    /// Duration covered by the span.
    pub fn dur(&self) -> SimDur {
        self.end.since(self.start)
    }
}

/// A completed simulation's trace: an ordered list of spans plus the symbol
/// pool their names live in.
#[derive(Debug, Clone)]
pub struct Trace {
    spans: Vec<TraceSpan>,
    pool: Arc<SymPool>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Create an empty trace with a fresh symbol pool.
    pub fn new() -> Self {
        Trace {
            spans: Vec::new(),
            pool: Arc::new(SymPool::new()),
        }
    }

    /// Create an empty trace sharing an existing symbol pool (the engine
    /// passes its own so agent names and span labels resolve consistently).
    pub fn with_pool(pool: Arc<SymPool>) -> Self {
        Trace {
            spans: Vec::new(),
            pool,
        }
    }

    /// The symbol pool spans of this trace are interned in.
    pub fn pool(&self) -> &Arc<SymPool> {
        &self.pool
    }

    /// Intern a string in this trace's pool (for custom recorders).
    pub fn intern(&self, s: &str) -> Sym {
        self.pool.intern(s)
    }

    /// Resolve an interned name back to text.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.pool.resolve(sym)
    }

    /// Append a span (engine-internal, but public for custom recorders).
    pub fn push(&mut self, span: TraceSpan) {
        debug_assert!(span.end >= span.start, "span ends before it starts");
        self.spans.push(span);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans matching a predicate, copied into a new trace sharing the pool.
    pub fn filter(&self, mut pred: impl FnMut(&TraceSpan) -> bool) -> Trace {
        Trace {
            spans: self.spans.iter().filter(|s| pred(s)).copied().collect(),
            pool: Arc::clone(&self.pool),
        }
    }

    /// Sum of raw span durations in a category (double-counts overlap).
    pub fn total(&self, category: Category) -> SimDur {
        self.spans
            .iter()
            .filter(|s| s.category == category)
            .map(|s| s.dur())
            .sum()
    }

    /// Length of the *union* of intervals in a category (no double counting).
    pub fn busy(&self, category: Category) -> SimDur {
        union_len(&self.intervals(category))
    }

    /// Length of time where `a`-category and `b`-category activity coexist.
    ///
    /// This is the paper's "overlapped communication": intersect the union of
    /// communication intervals with the union of compute intervals.
    pub fn overlap(&self, a: Category, b: Category) -> SimDur {
        intersect_len(&self.intervals(a), &self.intervals(b))
    }

    /// Fraction of `a`'s busy time that coexists with `b` (0.0–1.0).
    ///
    /// Returns 0.0 when `a` has no busy time.
    pub fn overlap_ratio(&self, a: Category, b: Category) -> f64 {
        let busy = self.busy(a).as_nanos();
        if busy == 0 {
            return 0.0;
        }
        self.overlap(a, b).as_nanos() as f64 / busy as f64
    }

    /// Per-category totals (raw sums), for summary tables.
    pub fn totals_by_category(&self) -> BTreeMap<Category, SimDur> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.category).or_insert(SimDur::ZERO) += s.dur();
        }
        map
    }

    /// Merged, sorted interval list for a category.
    fn intervals(&self, category: Category) -> Vec<(u64, u64)> {
        let mut iv: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.category == category && s.end > s.start)
            .map(|s| (s.start.as_nanos(), s.end.as_nanos()))
            .collect();
        iv.sort_unstable();
        merge(iv)
    }

    /// Export in Chrome tracing (catapult) JSON format — open in
    /// `chrome://tracing` or Perfetto for an interactive Nsight-style view.
    ///
    /// Each agent becomes a "thread"; spans become complete (`ph:"X"`)
    /// events with microsecond timestamps.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut agents: Vec<(AgentId, Sym)> = Vec::new();
        for s in &self.spans {
            if !agents.iter().any(|(id, _)| *id == s.agent) {
                agents.push((s.agent, s.agent_name));
            }
        }
        agents.sort_by_key(|(id, _)| *id);
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (id, name) in &agents {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                id.0,
                esc(&self.resolve(*name))
            ));
        }
        for s in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
                esc(&self.resolve(s.label)),
                s.category.tag(),
                s.start.as_micros_f64(),
                s.dur().as_micros_f64(),
                s.agent.0
            ));
        }
        out.push_str("\n]}");
        out
    }

    /// Render a fixed-width ASCII timeline grouped by agent name — the
    /// simulator's stand-in for the paper's Nsight screenshots (Fig 2.1b/5.1b).
    ///
    /// `width` is the number of character columns used for the time axis.
    pub fn render_timeline(&self, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(empty trace)\n");
            return out;
        }
        let t0 = self.spans.iter().map(|s| s.start).min().unwrap();
        let t1 = self.spans.iter().map(|s| s.end).max().unwrap();
        let total = (t1.since(t0).as_nanos()).max(1);
        let mut by_agent: BTreeMap<Arc<str>, Vec<&TraceSpan>> = BTreeMap::new();
        for s in &self.spans {
            by_agent
                .entry(self.resolve(s.agent_name))
                .or_default()
                .push(s);
        }
        let name_w = by_agent.keys().map(|n| n.len()).max().unwrap_or(4).max(5);
        let _ = writeln!(
            out,
            "{:name_w$} |{}| span {} .. {}",
            "agent",
            "-".repeat(width),
            t0,
            t1
        );
        for (name, spans) in by_agent {
            let mut row = vec![b' '; width];
            for s in spans {
                let a = ((s.start.since(t0).as_nanos()) as u128 * width as u128 / total as u128)
                    as usize;
                let b =
                    ((s.end.since(t0).as_nanos()) as u128 * width as u128 / total as u128) as usize;
                let b = b.clamp(a + 1, width).min(width);
                let ch = match s.category {
                    Category::Compute => b'#',
                    Category::Comm => b'~',
                    Category::Sync => b'.',
                    Category::Launch => b'L',
                    Category::Api => b'a',
                    Category::Other => b'o',
                };
                for c in &mut row[a.min(width - 1)..b] {
                    // Keep the "densest" marker: compute wins over waits.
                    if *c == b' ' || *c == b'.' {
                        *c = ch;
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:name_w$} |{}|",
                name,
                String::from_utf8(row).unwrap()
            );
        }
        out.push_str("legend: # compute  ~ comm  . sync-wait  L launch  a api\n");
        out
    }
}

/// Merge sorted intervals into disjoint ones.
fn merge(iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of disjoint intervals.
fn union_len(iv: &[(u64, u64)]) -> SimDur {
    SimDur(iv.iter().map(|(s, e)| e - s).sum())
}

/// Total length of the intersection of two disjoint, sorted interval lists.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> SimDur {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            acc += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    SimDur(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    fn span(t: &Trace, cat: Category, a: u64, b: u64) -> TraceSpan {
        TraceSpan {
            agent: AgentId(0),
            agent_name: t.intern("t"),
            start: SimTime(a),
            end: SimTime(b),
            category: cat,
            label: Sym::EMPTY,
        }
    }

    #[test]
    fn totals_and_busy_differ_under_overlap() {
        let mut t = Trace::new();
        let s1 = span(&t, Category::Comm, 0, 100);
        let s2 = span(&t, Category::Comm, 50, 150);
        t.push(s1);
        t.push(s2);
        assert_eq!(t.total(Category::Comm).as_nanos(), 200);
        assert_eq!(t.busy(Category::Comm).as_nanos(), 150);
    }

    #[test]
    fn overlap_between_categories() {
        let mut t = Trace::new();
        let s1 = span(&t, Category::Comm, 0, 100);
        let s2 = span(&t, Category::Compute, 60, 200);
        t.push(s1);
        t.push(s2);
        assert_eq!(t.overlap(Category::Comm, Category::Compute).as_nanos(), 40);
        let r = t.overlap_ratio(Category::Comm, Category::Compute);
        assert!((r - 0.4).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_zero_when_empty() {
        let t = Trace::new();
        assert_eq!(t.overlap_ratio(Category::Comm, Category::Compute), 0.0);
    }

    #[test]
    fn merge_handles_adjacent_and_nested() {
        assert_eq!(merge(vec![(0, 10), (10, 20), (15, 18)]), vec![(0, 20)]);
        assert_eq!(merge(vec![(0, 5), (7, 9)]), vec![(0, 5), (7, 9)]);
    }

    #[test]
    fn intersect_disjoint_lists() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(intersect_len(&a, &b).as_nanos(), 10);
    }

    #[test]
    fn timeline_renders_rows() {
        let mut t = Trace::new();
        let s1 = span(&t, Category::Compute, 0, us(10.0).as_nanos());
        let s2 = span(&t, Category::Comm, 0, us(5.0).as_nanos());
        t.push(s1);
        t.push(s2);
        let s = t.render_timeline(40);
        assert!(s.contains('#'));
        assert!(s.contains("legend"));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::new();
        let s = TraceSpan {
            agent: AgentId(3),
            agent_name: t.intern("gpu0.\"comm\""),
            start: SimTime(1000),
            end: SimTime(3500),
            category: Category::Comm,
            label: t.intern("halo \"put\""),
        };
        t.push(s);
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\\\"put\\\""), "labels must be escaped");
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn chrome_json_empty_trace() {
        assert_eq!(Trace::new().to_chrome_json(), "{\"traceEvents\":[\n\n]}");
    }

    #[test]
    fn tags_are_uniform_trimmed_uppercase() {
        for cat in Category::ALL {
            let tag = cat.tag();
            assert_eq!(tag, tag.trim(), "tag {tag:?} carries padding");
            assert_eq!(tag, tag.to_uppercase());
            assert!((1..=4).contains(&tag.len()), "tag {tag:?} length");
            // Padded display is what aligns timeline columns.
            assert_eq!(format!("{:<4}", tag).len(), 4);
        }
    }

    #[test]
    fn filter_copies_matching_spans_and_shares_pool() {
        let mut t = Trace::new();
        let s1 = span(&t, Category::Comm, 0, 10);
        let s2 = span(&t, Category::Compute, 0, 10);
        t.push(s1);
        t.push(s2);
        let only = t.filter(|s| s.category == Category::Comm);
        assert_eq!(only.len(), 1);
        assert_eq!(&*only.resolve(only.spans()[0].agent_name), "t");
    }

    #[test]
    fn spans_are_copy_and_small() {
        // The hot path moves spans by value; keep them register-friendly.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceSpan>();
        assert!(std::mem::size_of::<TraceSpan>() <= 48);
    }
}
