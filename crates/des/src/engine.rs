//! The deterministic virtual-time scheduler.
//!
//! # Execution model
//!
//! Agents are imperative routines (host threads, persistent-kernel thread
//! blocks, stream workers, …) written as ordinary Rust closures against
//! [`AgentCtx`](crate::agent::AgentCtx). Each agent runs on its own OS thread,
//! but **exactly one thread is ever runnable at a time**: control ping-pongs
//! between the scheduler (the thread that called [`Engine::run`]) and the
//! single agent it has resumed. The result is a sequential, fully
//! deterministic simulation in which agent code can block (`advance`,
//! `wait_flag`, `barrier`) with ordinary imperative control flow — no hand
//! written state machines, no async.
//!
//! # Determinism
//!
//! Runnable work is ordered by `(virtual_time, sequence_number)`, where the
//! sequence number increases monotonically with every enqueue. Two runs of
//! the same program therefore execute agents in the identical order and
//! produce identical virtual end times (and identical buffer contents in the
//! layers above).

use crate::agent::{AgentCtx, AgentId};
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Trace, TraceSpan};
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// Live agents remain but none can ever run again.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// `name: blocked-on` diagnostics for every stuck agent.
        blocked: Vec<String>,
    },
    /// An agent closure panicked.
    AgentPanic {
        /// Name of the panicking agent.
        agent: String,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time, blocked } => {
                write!(f, "simulation deadlocked at {time}; blocked agents: ")?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            SimError::AgentPanic { agent, message } => {
                write!(f, "agent `{agent}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What an agent asks of the scheduler when it hands control back.
pub(crate) enum Request {
    /// Charge virtual time, resume at `now + dur`.
    Advance(SimDur),
    /// Block until the flag satisfies `cmp value`.
    WaitFlag { flag: Flag, cmp: Cmp, value: u64 },
    /// Block on an N-party barrier.
    Barrier(Barrier),
    /// Resume after other same-time work.
    Yield,
    /// Agent closure returned (or panicked with the given message).
    Finished(Option<String>),
}

/// A queue entry: something that happens at a virtual time.
enum Action {
    Resume(AgentId),
    Signal { flag: Flag, op: SignalOp, value: u64 },
    /// Run a side-effect closure (e.g. materialize DMA data at completion
    /// time). Executed on the scheduler thread, outside the engine lock; the
    /// closure must not call back into the engine.
    Call(Box<dyn FnOnce() + Send>),
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

pub(crate) enum Turn {
    Scheduler,
    Agent(AgentId),
}

struct FlagState {
    value: u64,
    waiters: Vec<(AgentId, Cmp, u64)>,
}

struct BarrierState {
    parties: usize,
    waiting: Vec<AgentId>,
}

struct AgentSlot {
    name: String,
    cv: Arc<Condvar>,
    handle: Option<JoinHandle<()>>,
    alive: bool,
    /// Human-readable description of what the agent is blocked on.
    blocked_on: Option<String>,
}

pub(crate) struct Central {
    pub(crate) turn: Turn,
    pub(crate) clock: SimTime,
    pub(crate) shutdown: bool,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    flags: Vec<FlagState>,
    barriers: Vec<BarrierState>,
    agents: Vec<AgentSlot>,
    live_agents: usize,
    pub(crate) request: Option<(AgentId, Request)>,
    pub(crate) trace: Trace,
    trace_enabled: bool,
}

impl Central {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push(&mut self, time: SimTime, action: Action) {
        let seq = self.next_seq();
        self.queue.push(Scheduled { time, seq, action });
    }

    /// Schedule a future signal application (e.g. a DMA completion).
    pub(crate) fn push_signal(&mut self, time: SimTime, flag: Flag, op: SignalOp, value: u64) {
        self.push(time, Action::Signal { flag, op, value });
    }

    /// Schedule a future side-effect closure.
    pub(crate) fn push_call(&mut self, time: SimTime, f: Box<dyn FnOnce() + Send>) {
        self.push(time, Action::Call(f));
    }

    /// Apply a signal to a flag and make every now-satisfied waiter runnable.
    pub(crate) fn apply_signal(&mut self, flag: Flag, op: SignalOp, value: u64, at: SimTime) {
        let state = &mut self.flags[flag.0];
        state.value = op.apply(state.value, value);
        let val = state.value;
        let mut woken = Vec::new();
        state.waiters.retain(|&(agent, cmp, target)| {
            if cmp.eval(val, target) {
                woken.push(agent);
                false
            } else {
                true
            }
        });
        for agent in woken {
            self.agents[agent.0].blocked_on = None;
            self.push(at, Action::Resume(agent));
        }
    }

    pub(crate) fn flag_value(&self, flag: Flag) -> u64 {
        self.flags[flag.0].value
    }

    pub(crate) fn new_flag(&mut self, init: u64) -> Flag {
        self.flags.push(FlagState {
            value: init,
            waiters: Vec::new(),
        });
        Flag(self.flags.len() - 1)
    }

    pub(crate) fn new_barrier(&mut self, parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(BarrierState {
            parties,
            waiting: Vec::new(),
        });
        Barrier(self.barriers.len() - 1)
    }

    pub(crate) fn record_span(&mut self, span: TraceSpan) {
        if self.trace_enabled {
            self.trace.push(span);
        }
    }

    pub(crate) fn agent_name(&self, id: AgentId) -> &str {
        &self.agents[id.0].name
    }
}

pub(crate) struct Shared {
    pub(crate) central: Mutex<Central>,
    pub(crate) sched_cv: Condvar,
}

/// The deterministic virtual-time discrete-event engine.
///
/// Typical use:
///
/// ```
/// use sim_des::{Engine, Cmp, SignalOp, us};
///
/// let engine = Engine::new();
/// let flag = engine.flag(0);
/// engine.spawn("producer", move |ctx| {
///     ctx.advance(us(5.0));
///     ctx.signal(flag, SignalOp::Set, 1);
/// });
/// engine.spawn("consumer", move |ctx| {
///     ctx.wait_flag(flag, Cmp::Ge, 1);
///     assert_eq!(ctx.now().as_micros_f64(), 5.0);
/// });
/// let end = engine.run().unwrap();
/// assert_eq!(end.as_micros_f64(), 5.0);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an empty engine at virtual time zero.
    pub fn new() -> Self {
        Engine {
            shared: Arc::new(Shared {
                central: Mutex::new(Central {
                    turn: Turn::Scheduler,
                    clock: SimTime::ZERO,
                    shutdown: false,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    flags: Vec::new(),
                    barriers: Vec::new(),
                    agents: Vec::new(),
                    live_agents: 0,
                    request: None,
                    trace: Trace::new(),
                    trace_enabled: true,
                }),
                sched_cv: Condvar::new(),
            }),
        }
    }

    /// Allocate a signal flag with an initial value.
    pub fn flag(&self, init: u64) -> Flag {
        self.shared.central.lock().new_flag(init)
    }

    /// Allocate a reusable N-party barrier.
    pub fn barrier(&self, parties: usize) -> Barrier {
        self.shared.central.lock().new_barrier(parties)
    }

    /// Current value of a flag (also usable after the run for inspection).
    pub fn flag_value(&self, flag: Flag) -> u64 {
        self.shared.central.lock().flag_value(flag)
    }

    /// Enable or disable span recording (enabled by default).
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.shared.central.lock().trace_enabled = enabled;
    }

    /// Clone the recorded trace (normally read after [`Engine::run`]).
    pub fn trace(&self) -> Trace {
        self.shared.central.lock().trace.clone()
    }

    /// Virtual time of the engine clock.
    pub fn now(&self) -> SimTime {
        self.shared.central.lock().clock
    }

    /// Spawn an agent, runnable at the current virtual time.
    ///
    /// Returns its id. The closure runs on a dedicated OS thread, but only
    /// when the scheduler hands it the (single) execution token.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx) + Send + 'static,
    {
        spawn_agent(&self.shared, name.into(), f)
    }

    /// Drive the simulation until every agent has finished.
    ///
    /// Returns the final virtual time, or an error on deadlock / agent panic.
    /// On error the engine is shut down: all parked agent threads are
    /// unwound and joined, so the process does not leak threads.
    pub fn run(&self) -> Result<SimTime, SimError> {
        let result = self.drive();
        if result.is_err() {
            self.shutdown();
        }
        result
    }

    fn drive(&self) -> Result<SimTime, SimError> {
        let mut g = self.shared.central.lock();
        loop {
            let Some(next) = g.queue.pop() else {
                if g.live_agents == 0 {
                    return Ok(g.clock);
                }
                let time = g.clock;
                let blocked = g
                    .agents
                    .iter()
                    .filter(|a| a.alive)
                    .map(|a| {
                        format!(
                            "{}: {}",
                            a.name,
                            a.blocked_on.as_deref().unwrap_or("(unknown wait)")
                        )
                    })
                    .collect();
                return Err(SimError::Deadlock { time, blocked });
            };
            debug_assert!(next.time >= g.clock, "time went backwards");
            g.clock = next.time;
            match next.action {
                Action::Signal { flag, op, value } => {
                    let at = g.clock;
                    g.apply_signal(flag, op, value, at);
                }
                Action::Call(f) => {
                    // Run outside the lock: the closure may take unrelated
                    // locks (buffer mutexes) but must not re-enter the engine.
                    drop(g);
                    f();
                    g = self.shared.central.lock();
                }
                Action::Resume(agent) => {
                    // Hand the token to the agent and wait for it back.
                    g.turn = Turn::Agent(agent);
                    let cv = Arc::clone(&g.agents[agent.0].cv);
                    cv.notify_one();
                    while !matches!(g.turn, Turn::Scheduler) {
                        self.shared.sched_cv.wait(&mut g);
                    }
                    let (id, request) = g.request.take().expect("agent yielded without request");
                    debug_assert_eq!(id, agent);
                    match request {
                        Request::Advance(dur) => {
                            let t = g.clock + dur;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::WaitFlag { flag, cmp, value } => {
                            if cmp.eval(g.flags[flag.0].value, value) {
                                let t = g.clock;
                                g.push(t, Action::Resume(agent));
                            } else {
                                g.agents[agent.0].blocked_on =
                                    Some(format!("flag #{} {:?} {}", flag.0, cmp, value));
                                g.flags[flag.0].waiters.push((agent, cmp, value));
                            }
                        }
                        Request::Barrier(b) => {
                            g.agents[agent.0].blocked_on = Some(format!("barrier #{}", b.0));
                            g.barriers[b.0].waiting.push(agent);
                            if g.barriers[b.0].waiting.len() == g.barriers[b.0].parties {
                                let t = g.clock;
                                let woken = std::mem::take(&mut g.barriers[b.0].waiting);
                                for w in woken {
                                    g.agents[w.0].blocked_on = None;
                                    g.push(t, Action::Resume(w));
                                }
                            }
                        }
                        Request::Yield => {
                            let t = g.clock;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::Finished(panic_msg) => {
                            g.agents[agent.0].alive = false;
                            g.live_agents -= 1;
                            if let Some(h) = g.agents[agent.0].handle.take() {
                                // The thread is past its last handoff; join is
                                // immediate and keeps the process tidy.
                                drop(g);
                                let _ = h.join();
                                g = self.shared.central.lock();
                            }
                            if let Some(message) = panic_msg {
                                let agent_name = g.agents[agent.0].name.clone();
                                return Err(SimError::AgentPanic {
                                    agent: agent_name,
                                    message,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    /// Unwind and join every still-parked agent thread.
    fn shutdown(&self) {
        let mut g = self.shared.central.lock();
        g.shutdown = true;
        let cvs: Vec<Arc<Condvar>> = g
            .agents
            .iter()
            .filter(|a| a.alive)
            .map(|a| Arc::clone(&a.cv))
            .collect();
        for cv in &cvs {
            cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> =
            g.agents.iter_mut().filter_map(|a| a.handle.take()).collect();
        drop(g);
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sentinel panic payload used to unwind agents during shutdown.
pub(crate) struct ShutdownUnwind;

pub(crate) fn spawn_agent<F>(shared: &Arc<Shared>, name: String, f: F) -> AgentId
where
    F: FnOnce(&mut AgentCtx) + Send + 'static,
{
    let cv = Arc::new(Condvar::new());
    let id;
    {
        let mut g = shared.central.lock();
        id = AgentId(g.agents.len());
        g.agents.push(AgentSlot {
            name,
            cv: Arc::clone(&cv),
            handle: None,
            alive: true,
            blocked_on: None,
        });
        g.live_agents += 1;
        let t = g.clock;
        g.push(t, Action::Resume(id));
    }
    let thread_shared = Arc::clone(shared);
    let thread_cv = Arc::clone(&cv);
    let handle = std::thread::Builder::new()
        .name(format!("sim-agent-{}", id.0))
        .spawn(move || {
            // Park until the scheduler hands us the token for the first time.
            {
                let mut g = thread_shared.central.lock();
                while !matches!(g.turn, Turn::Agent(a) if a == id) {
                    if g.shutdown {
                        return;
                    }
                    thread_cv.wait(&mut g);
                }
            }
            let mut ctx = AgentCtx::new(Arc::clone(&thread_shared), id, Arc::clone(&thread_cv));
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            let panic_msg = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownUnwind>().is_some() {
                        // Engine-initiated unwind: exit silently, the engine
                        // is already tearing down and holds no expectations.
                        return;
                    }
                    Some(render_panic(&*payload))
                }
            };
            // Final handoff: report completion to the scheduler.
            let mut g = thread_shared.central.lock();
            g.request = Some((id, Request::Finished(panic_msg)));
            g.turn = Turn::Scheduler;
            thread_shared.sched_cv.notify_one();
        })
        .expect("failed to spawn agent thread");
    shared.central.lock().agents[id.0].handle = Some(handle);
    id
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}
