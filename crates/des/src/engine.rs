//! The deterministic virtual-time scheduler.
//!
//! # Execution model
//!
//! Agents are imperative routines (host threads, persistent-kernel thread
//! blocks, stream workers, …) written as ordinary Rust closures against
//! [`AgentCtx`](crate::agent::AgentCtx). Each agent runs on its own OS thread,
//! but **exactly one thread is ever runnable at a time**: control ping-pongs
//! between the scheduler (the thread that called [`Engine::run`]) and the
//! single agent it has resumed. The result is a sequential, fully
//! deterministic simulation in which agent code can block (`advance`,
//! `wait_flag`, `barrier`) with ordinary imperative control flow — no hand
//! written state machines, no async.
//!
//! # Determinism
//!
//! Runnable work is ordered by `(virtual_time, sequence_number)`, where the
//! sequence number increases monotonically with every enqueue. Two runs of
//! the same program therefore execute agents in the identical order and
//! produce identical virtual end times (and identical buffer contents in the
//! layers above).

use crate::agent::{AgentCtx, AgentId};
use crate::fault::mix64;
use crate::hb::{AsyncClock, HbTracker};
use crate::lock::{Condvar, Mutex};
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Trace, TraceSpan};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// Live agents remain but none can ever run again.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// `name: blocked-on` diagnostics for every stuck agent.
        blocked: Vec<String>,
        /// Agent names forming a wait-for cycle, when the blocked agents'
        /// declared wait-for edges (see [`AgentCtx::wait_flag_from`]) close
        /// one; empty when no cycle could be established.
        cycle: Vec<String>,
    },
    /// An agent closure panicked.
    AgentPanic {
        /// Name of the panicking agent.
        agent: String,
        /// Rendered panic payload.
        message: String,
    },
    /// A deadline wait expired (or a watchdog diagnosed a stall) and the
    /// simulation was aborted with attribution.
    Timeout {
        /// Virtual time at which the timeout fired.
        time: SimTime,
        /// Name of the agent that timed out (or was diagnosed as stuck).
        agent: String,
        /// What the agent was waiting for.
        waiting_on: String,
        /// The deadline that expired.
        deadline: SimTime,
        /// Agent names forming a wait-for cycle at diagnosis time (empty
        /// when the stall is not a cyclic wait).
        cycle: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                time,
                blocked,
                cycle,
            } => {
                write!(f, "simulation deadlocked at {time}; blocked agents: ")?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                if !cycle.is_empty() {
                    write!(f, "; wait-for cycle: {}", cycle.join(" -> "))?;
                }
                Ok(())
            }
            SimError::AgentPanic { agent, message } => {
                write!(f, "agent `{agent}` panicked: {message}")
            }
            SimError::Timeout {
                time,
                agent,
                waiting_on,
                deadline,
                cycle,
            } => {
                write!(
                    f,
                    "agent `{agent}` timed out at {time} (deadline {deadline}) waiting on {waiting_on}"
                )?;
                if !cycle.is_empty() {
                    write!(f, "; wait-for cycle: {}", cycle.join(" -> "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Diagnostic snapshot of one blocked agent (for watchdogs).
#[derive(Debug, Clone)]
pub struct BlockedInfo {
    /// The agent's name.
    pub name: String,
    /// The agent's declared identity label (e.g. `"pe3"`), if any.
    pub identity: Option<String>,
    /// Human-readable description of what it is blocked on.
    pub blocked_on: String,
    /// Identity label of the peer it declared it is waiting for, if any.
    pub waiting_for: Option<String>,
}

/// How an agent's closure ended.
pub(crate) enum FinishKind {
    /// Returned normally.
    Ok,
    /// Panicked with the rendered message.
    Panic(String),
    /// Requested a structured simulation abort (see [`AgentCtx::abort`]).
    Abort(SimError),
}

/// Panic payload used by [`AgentCtx::abort`] to carry a structured
/// [`SimError`] out of an agent closure.
pub(crate) struct AbortSim(pub(crate) SimError);

/// What an agent asks of the scheduler when it hands control back.
pub(crate) enum Request {
    /// Charge virtual time, resume at `now + dur`.
    Advance(SimDur),
    /// Block until the flag satisfies `cmp value`, optionally bounded by a
    /// virtual-time deadline and annotated with the identity of the peer the
    /// agent expects the signal from (wait-for-graph edge).
    WaitFlag {
        flag: Flag,
        cmp: Cmp,
        value: u64,
        deadline: Option<SimTime>,
        expected_from: Option<String>,
    },
    /// Block on an N-party barrier, optionally bounded by a deadline.
    Barrier {
        barrier: Barrier,
        deadline: Option<SimTime>,
    },
    /// Resume after other same-time work.
    Yield,
    /// Agent closure ended.
    Finished(FinishKind),
}

/// A queue entry: something that happens at a virtual time.
enum Action {
    Resume(AgentId),
    Signal {
        flag: Flag,
        op: SignalOp,
        value: u64,
        /// Happens-before stamp the delivery carries (present only when the
        /// HB tracker is enabled at issue time).
        stamp: Option<AsyncClock>,
    },
    /// Run a side-effect closure (e.g. materialize DMA data at completion
    /// time). Executed on the scheduler thread, outside the engine lock; the
    /// closure must not call back into the engine.
    Call(Box<dyn FnOnce() + Send>),
    /// A deadline for a bounded wait. Stale once the agent's wait epoch has
    /// moved on (the wait completed first); stale fires are skipped WITHOUT
    /// advancing the clock so unexpired deadlines never distort end times.
    TimeoutFire {
        agent: AgentId,
        epoch: u64,
    },
}

/// What a blocked agent is parked on (used to unhook it on timeout).
#[derive(Clone, Copy)]
enum WaitTarget {
    Flag(Flag),
    Barrier(Barrier),
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

pub(crate) enum Turn {
    Scheduler,
    Agent(AgentId),
}

struct FlagState {
    value: u64,
    waiters: Vec<(AgentId, Cmp, u64)>,
}

struct BarrierState {
    parties: usize,
    waiting: Vec<AgentId>,
}

struct AgentSlot {
    name: String,
    cv: Arc<Condvar>,
    handle: Option<JoinHandle<()>>,
    alive: bool,
    /// Human-readable description of what the agent is blocked on.
    blocked_on: Option<String>,
    /// Logical identity (e.g. `"pe2"`) used as the node label in the
    /// wait-for graph. Set via [`AgentCtx::set_identity`].
    identity: Option<String>,
    /// Identity of the peer this agent declared it is waiting for
    /// (wait-for-graph edge); cleared when the wait completes.
    waiting_for: Option<String>,
    /// The flag/barrier the agent is currently parked on, if any.
    wait_target: Option<WaitTarget>,
    /// Bumped on every blocking wait; guards [`Action::TimeoutFire`]
    /// staleness.
    wait_epoch: u64,
    /// Set by a fired timeout; consumed by the agent when it resumes.
    timed_out: bool,
}

pub(crate) struct Central {
    pub(crate) turn: Turn,
    pub(crate) clock: SimTime,
    pub(crate) shutdown: bool,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    flags: Vec<FlagState>,
    barriers: Vec<BarrierState>,
    agents: Vec<AgentSlot>,
    live_agents: usize,
    pub(crate) request: Option<(AgentId, Request)>,
    pub(crate) trace: Trace,
    trace_enabled: bool,
    /// Happens-before tracker; `None` (the default) records nothing.
    pub(crate) hb: Option<Arc<HbTracker>>,
    /// Seed for the wake-order perturbation; `None` keeps FIFO tie-breaks.
    jitter: Option<u64>,
    /// Draw counter for the jitter stream (advances per permutation step).
    jitter_ctr: u64,
}

impl Central {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push(&mut self, time: SimTime, action: Action) {
        let seq = self.next_seq();
        self.queue.push(Scheduled { time, seq, action });
    }

    /// Schedule a future signal application (e.g. a DMA completion).
    pub(crate) fn push_signal(
        &mut self,
        time: SimTime,
        flag: Flag,
        op: SignalOp,
        value: u64,
        stamp: Option<AsyncClock>,
    ) {
        self.push(
            time,
            Action::Signal {
                flag,
                op,
                value,
                stamp,
            },
        );
    }

    /// Schedule a future side-effect closure.
    pub(crate) fn push_call(&mut self, time: SimTime, f: Box<dyn FnOnce() + Send>) {
        self.push(time, Action::Call(f));
    }

    /// Apply a signal to a flag and make every now-satisfied waiter runnable.
    pub(crate) fn apply_signal(
        &mut self,
        flag: Flag,
        op: SignalOp,
        value: u64,
        at: SimTime,
        stamp: Option<AsyncClock>,
    ) {
        if let (Some(hb), Some(s)) = (&self.hb, &stamp) {
            hb.on_signal_deliver(flag, s, at);
        }
        let state = &mut self.flags[flag.0];
        state.value = op.apply(state.value, value);
        let val = state.value;
        let mut woken = Vec::new();
        state.waiters.retain(|&(agent, cmp, target)| {
            if cmp.eval(val, target) {
                woken.push(agent);
                false
            } else {
                true
            }
        });
        if let Some(hb) = &self.hb {
            for &agent in &woken {
                hb.on_wait_satisfied(agent, flag, at);
            }
        }
        self.permute_woken(&mut woken);
        for agent in woken {
            self.clear_wait(agent);
            self.push(at, Action::Resume(agent));
        }
    }

    /// Seeded Fisher–Yates permutation of a batch of simultaneously woken
    /// agents. The members of such a batch are mutually concurrent (all
    /// released by the same signal application or barrier arrival), so any
    /// relative wake order is a valid schedule — this is the perturbation
    /// lever used by the conformance harness. A no-op unless
    /// [`Engine::set_wake_jitter`] was called.
    fn permute_woken(&mut self, woken: &mut [AgentId]) {
        let Some(seed) = self.jitter else { return };
        for i in (1..woken.len()).rev() {
            self.jitter_ctr += 1;
            let j = (mix64(seed ^ self.jitter_ctr) % (i as u64 + 1)) as usize;
            woken.swap(i, j);
        }
    }

    /// Forget a completed (or cancelled) blocking wait.
    fn clear_wait(&mut self, agent: AgentId) {
        let slot = &mut self.agents[agent.0];
        slot.blocked_on = None;
        slot.waiting_for = None;
        slot.wait_target = None;
    }

    pub(crate) fn set_identity(&mut self, id: AgentId, identity: String) {
        self.agents[id.0].identity = Some(identity);
    }

    /// Consume the agent's timed-out marker (set by a fired deadline).
    pub(crate) fn take_timed_out(&mut self, id: AgentId) -> bool {
        std::mem::take(&mut self.agents[id.0].timed_out)
    }

    /// Snapshot of every live blocked agent, for watchdog diagnosis.
    pub(crate) fn blocked_snapshot(&self) -> Vec<BlockedInfo> {
        self.agents
            .iter()
            .filter(|a| a.alive && a.blocked_on.is_some())
            .map(|a| BlockedInfo {
                name: a.name.clone(),
                identity: a.identity.clone(),
                blocked_on: a.blocked_on.clone().unwrap_or_default(),
                waiting_for: a.waiting_for.clone(),
            })
            .collect()
    }

    /// Find a wait-for cycle among blocked agents, following the
    /// `waiting_for` edges declared via `expected_from` annotations. Edges
    /// point at identity labels; when several agents share an identity the
    /// graph is a heuristic (the last registrant wins), which is fine for
    /// diagnostics. Returns the agent NAMES on the first cycle found, or an
    /// empty vector if the blocked set is acyclic / unannotated.
    pub(crate) fn wait_cycle(&self) -> Vec<String> {
        let mut by_identity: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        for (i, a) in self.agents.iter().enumerate() {
            if a.alive && a.wait_target.is_some() {
                if let Some(ident) = a.identity.as_deref() {
                    by_identity.insert(ident, i);
                }
            }
        }
        for (start, a) in self.agents.iter().enumerate() {
            if !(a.alive && a.wait_target.is_some()) {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if let Some(pos) = path.iter().position(|&p| p == cur) {
                    return path[pos..]
                        .iter()
                        .map(|&p| self.agents[p].name.clone())
                        .collect();
                }
                path.push(cur);
                let Some(next_ident) = self.agents[cur].waiting_for.as_deref() else {
                    break;
                };
                let Some(&next) = by_identity.get(next_ident) else {
                    break;
                };
                if !(self.agents[next].alive && self.agents[next].wait_target.is_some()) {
                    break;
                }
                cur = next;
            }
        }
        Vec::new()
    }

    pub(crate) fn flag_value(&self, flag: Flag) -> u64 {
        self.flags[flag.0].value
    }

    pub(crate) fn new_flag(&mut self, init: u64) -> Flag {
        self.flags.push(FlagState {
            value: init,
            waiters: Vec::new(),
        });
        Flag(self.flags.len() - 1)
    }

    pub(crate) fn new_barrier(&mut self, parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(BarrierState {
            parties,
            waiting: Vec::new(),
        });
        Barrier(self.barriers.len() - 1)
    }

    pub(crate) fn record_span(&mut self, span: TraceSpan) {
        if self.trace_enabled {
            self.trace.push(span);
        }
    }

    pub(crate) fn agent_name(&self, id: AgentId) -> &str {
        &self.agents[id.0].name
    }
}

pub(crate) struct Shared {
    pub(crate) central: Mutex<Central>,
    pub(crate) sched_cv: Condvar,
}

/// The deterministic virtual-time discrete-event engine.
///
/// Typical use:
///
/// ```
/// use sim_des::{Engine, Cmp, SignalOp, us};
///
/// let engine = Engine::new();
/// let flag = engine.flag(0);
/// engine.spawn("producer", move |ctx| {
///     ctx.advance(us(5.0));
///     ctx.signal(flag, SignalOp::Set, 1);
/// });
/// engine.spawn("consumer", move |ctx| {
///     ctx.wait_flag(flag, Cmp::Ge, 1);
///     assert_eq!(ctx.now().as_micros_f64(), 5.0);
/// });
/// let end = engine.run().unwrap();
/// assert_eq!(end.as_micros_f64(), 5.0);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an empty engine at virtual time zero.
    pub fn new() -> Self {
        Engine {
            shared: Arc::new(Shared {
                central: Mutex::new(Central {
                    turn: Turn::Scheduler,
                    clock: SimTime::ZERO,
                    shutdown: false,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    flags: Vec::new(),
                    barriers: Vec::new(),
                    agents: Vec::new(),
                    live_agents: 0,
                    request: None,
                    trace: Trace::new(),
                    trace_enabled: true,
                    hb: None,
                    jitter: None,
                    jitter_ctr: 0,
                }),
                sched_cv: Condvar::new(),
            }),
        }
    }

    /// Allocate a signal flag with an initial value.
    pub fn flag(&self, init: u64) -> Flag {
        self.shared.central.lock().new_flag(init)
    }

    /// Allocate a reusable N-party barrier.
    pub fn barrier(&self, parties: usize) -> Barrier {
        self.shared.central.lock().new_barrier(parties)
    }

    /// Current value of a flag (also usable after the run for inspection).
    pub fn flag_value(&self, flag: Flag) -> u64 {
        self.shared.central.lock().flag_value(flag)
    }

    /// Enable or disable span recording (enabled by default).
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.shared.central.lock().trace_enabled = enabled;
    }

    /// Clone the recorded trace (normally read after [`Engine::run`]).
    pub fn trace(&self) -> Trace {
        self.shared.central.lock().trace.clone()
    }

    /// Virtual time of the engine clock.
    pub fn now(&self) -> SimTime {
        self.shared.central.lock().clock
    }

    /// Snapshot of every live blocked agent (for watchdog diagnosis).
    pub fn blocked_agents(&self) -> Vec<BlockedInfo> {
        self.shared.central.lock().blocked_snapshot()
    }

    /// Current wait-for cycle among blocked agents, if any (agent names).
    pub fn wait_cycle(&self) -> Vec<String> {
        self.shared.central.lock().wait_cycle()
    }

    /// Spawn an agent, runnable at the current virtual time.
    ///
    /// Returns its id. The closure runs on a dedicated OS thread, but only
    /// when the scheduler hands it the (single) execution token.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx) + Send + 'static,
    {
        spawn_agent(&self.shared, name.into(), None, f)
    }

    /// Enable happens-before tracking, creating the tracker on first call.
    ///
    /// Call before spawning agents so every synchronization edge is seen.
    /// Returns the (shared) tracker for recording memory effects and
    /// reading diagnostics. Tier-1 runs never call this, so the default
    /// cost is a skipped `Option` check per engine operation.
    pub fn enable_hb(&self) -> Arc<HbTracker> {
        let mut g = self.shared.central.lock();
        if g.hb.is_none() {
            g.hb = Some(Arc::new(HbTracker::new()));
        }
        Arc::clone(g.hb.as_ref().expect("just set"))
    }

    /// The happens-before tracker, if [`Engine::enable_hb`] was called.
    pub fn hb(&self) -> Option<Arc<HbTracker>> {
        self.shared.central.lock().hb.clone()
    }

    /// Seed the wake-order perturbation: batches of simultaneously woken
    /// agents (barrier releases, multi-waiter signal applications) are
    /// permuted by a deterministic seeded shuffle instead of FIFO order.
    ///
    /// Every permuted order is a valid schedule of the same program, so a
    /// correct protocol must produce bit-identical results under any seed —
    /// the property the conformance harness asserts. Unset (the default)
    /// keeps the historical FIFO tie-break.
    pub fn set_wake_jitter(&self, seed: u64) {
        self.shared.central.lock().jitter = Some(seed);
    }

    /// Drive the simulation until every agent has finished.
    ///
    /// Returns the final virtual time, or an error on deadlock / agent panic.
    /// On error the engine is shut down: all parked agent threads are
    /// unwound and joined, so the process does not leak threads.
    pub fn run(&self) -> Result<SimTime, SimError> {
        let result = self.drive();
        if result.is_err() {
            self.shutdown();
        }
        result
    }

    fn drive(&self) -> Result<SimTime, SimError> {
        let mut g = self.shared.central.lock();
        loop {
            let Some(next) = g.queue.pop() else {
                if g.live_agents == 0 {
                    return Ok(g.clock);
                }
                let time = g.clock;
                let blocked = g
                    .agents
                    .iter()
                    .filter(|a| a.alive)
                    .map(|a| {
                        format!(
                            "{}: {}",
                            a.name,
                            a.blocked_on.as_deref().unwrap_or("(unknown wait)")
                        )
                    })
                    .collect();
                let cycle = g.wait_cycle();
                return Err(SimError::Deadlock {
                    time,
                    blocked,
                    cycle,
                });
            };
            if let Action::TimeoutFire { agent, epoch } = next.action {
                let live = {
                    let slot = &g.agents[agent.0];
                    slot.alive && slot.wait_epoch == epoch && slot.wait_target.is_some()
                };
                if !live {
                    // The wait completed first; drop the deadline WITHOUT
                    // touching the clock so it cannot distort end times.
                    continue;
                }
                g.clock = next.time;
                match g.agents[agent.0].wait_target {
                    Some(WaitTarget::Flag(f)) => {
                        g.flags[f.0].waiters.retain(|&(a, _, _)| a != agent);
                    }
                    Some(WaitTarget::Barrier(b)) => {
                        g.barriers[b.0].waiting.retain(|&a| a != agent);
                    }
                    None => unreachable!("live timeout without wait target"),
                }
                g.clear_wait(agent);
                g.agents[agent.0].timed_out = true;
                let t = g.clock;
                g.push(t, Action::Resume(agent));
                continue;
            }
            debug_assert!(next.time >= g.clock, "time went backwards");
            g.clock = next.time;
            match next.action {
                Action::TimeoutFire { .. } => unreachable!("handled above"),
                Action::Signal {
                    flag,
                    op,
                    value,
                    stamp,
                } => {
                    let at = g.clock;
                    g.apply_signal(flag, op, value, at, stamp);
                }
                Action::Call(f) => {
                    // Run outside the lock: the closure may take unrelated
                    // locks (buffer mutexes) but must not re-enter the engine.
                    drop(g);
                    f();
                    g = self.shared.central.lock();
                }
                Action::Resume(agent) => {
                    // Hand the token to the agent and wait for it back.
                    g.turn = Turn::Agent(agent);
                    let cv = Arc::clone(&g.agents[agent.0].cv);
                    cv.notify_one();
                    while !matches!(g.turn, Turn::Scheduler) {
                        self.shared.sched_cv.wait(&mut g);
                    }
                    let (id, request) = g.request.take().expect("agent yielded without request");
                    debug_assert_eq!(id, agent);
                    match request {
                        Request::Advance(dur) => {
                            let t = g.clock + dur;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::WaitFlag {
                            flag,
                            cmp,
                            value,
                            deadline,
                            expected_from,
                        } => {
                            if cmp.eval(g.flags[flag.0].value, value) {
                                let t = g.clock;
                                if let Some(hb) = &g.hb {
                                    hb.on_wait_satisfied(agent, flag, t);
                                }
                                g.push(t, Action::Resume(agent));
                            } else {
                                let epoch = {
                                    let slot = &mut g.agents[agent.0];
                                    slot.blocked_on =
                                        Some(format!("flag #{} {:?} {}", flag.0, cmp, value));
                                    slot.waiting_for = expected_from;
                                    slot.wait_target = Some(WaitTarget::Flag(flag));
                                    slot.wait_epoch += 1;
                                    slot.wait_epoch
                                };
                                g.flags[flag.0].waiters.push((agent, cmp, value));
                                if let Some(d) = deadline {
                                    let d = d.max(g.clock);
                                    g.push(d, Action::TimeoutFire { agent, epoch });
                                }
                            }
                        }
                        Request::Barrier {
                            barrier: b,
                            deadline,
                        } => {
                            let epoch = {
                                let slot = &mut g.agents[agent.0];
                                slot.blocked_on = Some(format!("barrier #{}", b.0));
                                slot.wait_target = Some(WaitTarget::Barrier(b));
                                slot.wait_epoch += 1;
                                slot.wait_epoch
                            };
                            g.barriers[b.0].waiting.push(agent);
                            if g.barriers[b.0].waiting.len() == g.barriers[b.0].parties {
                                let t = g.clock;
                                let mut woken = std::mem::take(&mut g.barriers[b.0].waiting);
                                if let Some(hb) = &g.hb {
                                    hb.on_barrier_release(&woken, b, t);
                                }
                                g.permute_woken(&mut woken);
                                for w in woken {
                                    g.clear_wait(w);
                                    g.push(t, Action::Resume(w));
                                }
                            } else if let Some(d) = deadline {
                                let d = d.max(g.clock);
                                g.push(d, Action::TimeoutFire { agent, epoch });
                            }
                        }
                        Request::Yield => {
                            let t = g.clock;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::Finished(kind) => {
                            g.agents[agent.0].alive = false;
                            g.live_agents -= 1;
                            if let Some(h) = g.agents[agent.0].handle.take() {
                                // The thread is past its last handoff; join is
                                // immediate and keeps the process tidy.
                                drop(g);
                                let _ = h.join();
                                g = self.shared.central.lock();
                            }
                            match kind {
                                FinishKind::Ok => {}
                                FinishKind::Panic(message) => {
                                    let agent_name = g.agents[agent.0].name.clone();
                                    return Err(SimError::AgentPanic {
                                        agent: agent_name,
                                        message,
                                    });
                                }
                                FinishKind::Abort(err) => return Err(err),
                            }
                        }
                    }
                }
            }
        }
    }

    /// Unwind and join every still-parked agent thread.
    fn shutdown(&self) {
        let mut g = self.shared.central.lock();
        g.shutdown = true;
        let cvs: Vec<Arc<Condvar>> = g
            .agents
            .iter()
            .filter(|a| a.alive)
            .map(|a| Arc::clone(&a.cv))
            .collect();
        for cv in &cvs {
            cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = g
            .agents
            .iter_mut()
            .filter_map(|a| a.handle.take())
            .collect();
        drop(g);
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sentinel panic payload used to unwind agents during shutdown.
pub(crate) struct ShutdownUnwind;

pub(crate) fn spawn_agent<F>(
    shared: &Arc<Shared>,
    name: String,
    parent: Option<AgentId>,
    f: F,
) -> AgentId
where
    F: FnOnce(&mut AgentCtx) + Send + 'static,
{
    let cv = Arc::new(Condvar::new());
    let id;
    {
        let mut g = shared.central.lock();
        id = AgentId(g.agents.len());
        if let Some(hb) = &g.hb {
            hb.on_spawn(parent, id, g.clock);
        }
        g.agents.push(AgentSlot {
            name,
            cv: Arc::clone(&cv),
            handle: None,
            alive: true,
            blocked_on: None,
            identity: None,
            waiting_for: None,
            wait_target: None,
            wait_epoch: 0,
            timed_out: false,
        });
        g.live_agents += 1;
        let t = g.clock;
        g.push(t, Action::Resume(id));
    }
    let thread_shared = Arc::clone(shared);
    let thread_cv = Arc::clone(&cv);
    let handle = std::thread::Builder::new()
        .name(format!("sim-agent-{}", id.0))
        .spawn(move || {
            // Park until the scheduler hands us the token for the first time.
            {
                let mut g = thread_shared.central.lock();
                while !matches!(g.turn, Turn::Agent(a) if a == id) {
                    if g.shutdown {
                        return;
                    }
                    thread_cv.wait(&mut g);
                }
            }
            let mut ctx = AgentCtx::new(Arc::clone(&thread_shared), id, Arc::clone(&thread_cv));
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            let kind = match result {
                Ok(()) => FinishKind::Ok,
                Err(payload) => match payload.downcast::<AbortSim>() {
                    Ok(abort) => FinishKind::Abort(abort.0),
                    Err(payload) => {
                        if payload.downcast_ref::<ShutdownUnwind>().is_some() {
                            // Engine-initiated unwind: exit silently, the
                            // engine is already tearing down and holds no
                            // expectations.
                            return;
                        }
                        FinishKind::Panic(render_panic(&*payload))
                    }
                },
            };
            // Final handoff: report completion to the scheduler.
            let mut g = thread_shared.central.lock();
            g.request = Some((id, Request::Finished(kind)));
            g.turn = Turn::Scheduler;
            thread_shared.sched_cv.notify_one();
        })
        .expect("failed to spawn agent thread");
    shared.central.lock().agents[id.0].handle = Some(handle);
    id
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}
