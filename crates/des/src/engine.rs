//! The deterministic virtual-time scheduler.
//!
//! # Execution model
//!
//! Agents are imperative routines (host threads, persistent-kernel thread
//! blocks, stream workers, …) written as ordinary Rust closures against
//! [`AgentCtx`](crate::agent::AgentCtx). Each agent runs on its own OS thread,
//! but **exactly one thread is ever runnable at a time**: control ping-pongs
//! between the scheduler (the thread that called [`Engine::run`]) and the
//! single agent it has resumed. The result is a sequential, fully
//! deterministic simulation in which agent code can block (`advance`,
//! `wait_flag`, `barrier`) with ordinary imperative control flow — no hand
//! written state machines, no async.
//!
//! # Determinism
//!
//! Runnable work is ordered by `(virtual_time, sequence_number)`, where the
//! sequence number increases monotonically with every enqueue. Two runs of
//! the same program therefore execute agents in the identical order and
//! produce identical virtual end times (and identical buffer contents in the
//! layers above).
//!
//! # Hot path
//!
//! The event queue is arena-allocated: the binary heap orders small
//! `(time, seq, slot)` keys while action payloads live in a slab whose
//! slots are recycled through a free list, so steady-state scheduling
//! performs no allocation. All names (agents, identities, span labels,
//! wait annotations) are interned [`Sym`]s; strings are materialized only
//! when a diagnostic or report is rendered.

use crate::agent::{AgentCtx, AgentId};
use crate::fault::mix64;
use crate::hb::{AsyncClock, HbTracker};
use crate::intern::{Label, Sym, SymPool};
use crate::lock::{Condvar, Mutex};
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Trace, TraceSpan};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// Live agents remain but none can ever run again.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// `name: blocked-on` diagnostics for every stuck agent.
        blocked: Vec<String>,
        /// Agent names forming a wait-for cycle, when the blocked agents'
        /// declared wait-for edges (see [`AgentCtx::wait_flag_from`]) close
        /// one; empty when no cycle could be established.
        cycle: Vec<String>,
    },
    /// An agent closure panicked.
    AgentPanic {
        /// Name of the panicking agent.
        agent: String,
        /// Rendered panic payload.
        message: String,
    },
    /// A deadline wait expired (or a watchdog diagnosed a stall) and the
    /// simulation was aborted with attribution.
    Timeout {
        /// Virtual time at which the timeout fired.
        time: SimTime,
        /// Name of the agent that timed out (or was diagnosed as stuck).
        agent: String,
        /// What the agent was waiting for.
        waiting_on: String,
        /// The deadline that expired.
        deadline: SimTime,
        /// Agent names forming a wait-for cycle at diagnosis time (empty
        /// when the stall is not a cyclic wait).
        cycle: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                time,
                blocked,
                cycle,
            } => {
                write!(f, "simulation deadlocked at {time}; blocked agents: ")?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                if !cycle.is_empty() {
                    write!(f, "; wait-for cycle: {}", cycle.join(" -> "))?;
                }
                Ok(())
            }
            SimError::AgentPanic { agent, message } => {
                write!(f, "agent `{agent}` panicked: {message}")
            }
            SimError::Timeout {
                time,
                agent,
                waiting_on,
                deadline,
                cycle,
            } => {
                write!(
                    f,
                    "agent `{agent}` timed out at {time} (deadline {deadline}) waiting on {waiting_on}"
                )?;
                if !cycle.is_empty() {
                    write!(f, "; wait-for cycle: {}", cycle.join(" -> "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Diagnostic snapshot of one blocked agent (for watchdogs).
#[derive(Debug, Clone)]
pub struct BlockedInfo {
    /// The agent's name.
    pub name: String,
    /// The agent's declared identity label (e.g. `"pe3"`), if any.
    pub identity: Option<String>,
    /// Human-readable description of what it is blocked on.
    pub blocked_on: String,
    /// Identity label of the peer it declared it is waiting for, if any.
    pub waiting_for: Option<String>,
}

/// Outcome of a bounded [`Engine::run_until`] window.
///
/// Bounded runs never report deadlock: an empty queue with live agents is
/// indistinguishable from "waiting for a message an external coordinator
/// has not injected yet". The coordinator (see [`crate::shard`]) owns that
/// judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every agent finished and no event remains: the simulation is over.
    Done,
    /// No event strictly earlier than the limit remains.
    Idle {
        /// Earliest pending event at or past the limit; `None` when the
        /// queue is empty (any live agents are parked on flags/barriers).
        next: Option<SimTime>,
    },
}

/// How an agent's closure ended.
pub(crate) enum FinishKind {
    /// Returned normally.
    Ok,
    /// Panicked with the rendered message.
    Panic(String),
    /// Requested a structured simulation abort (see [`AgentCtx::abort`]).
    Abort(SimError),
}

/// Panic payload used by [`AgentCtx::abort`] to carry a structured
/// [`SimError`] out of an agent closure.
pub(crate) struct AbortSim(pub(crate) SimError);

/// What an agent asks of the scheduler when it hands control back.
pub(crate) enum Request {
    /// Charge virtual time, resume at `now + dur`.
    Advance(SimDur),
    /// Block until the flag satisfies `cmp value`, optionally bounded by a
    /// virtual-time deadline and annotated with the identity of the peer the
    /// agent expects the signal from (wait-for-graph edge).
    WaitFlag {
        flag: Flag,
        cmp: Cmp,
        value: u64,
        deadline: Option<SimTime>,
        expected_from: Option<Sym>,
    },
    /// Block on an N-party barrier, optionally bounded by a deadline.
    Barrier {
        barrier: Barrier,
        deadline: Option<SimTime>,
    },
    /// Resume after other same-time work.
    Yield,
    /// Agent closure ended.
    Finished(FinishKind),
}

/// A queue entry: something that happens at a virtual time.
enum Action {
    Resume(AgentId),
    Signal {
        flag: Flag,
        op: SignalOp,
        value: u64,
        /// Happens-before stamp the delivery carries (present only when the
        /// HB tracker is enabled at issue time).
        stamp: Option<AsyncClock>,
    },
    /// Run a side-effect closure (e.g. materialize DMA data at completion
    /// time). Executed on the scheduler thread, outside the engine lock; the
    /// closure must not call back into the engine.
    Call(Box<dyn FnOnce() + Send>),
    /// A deadline for a bounded wait. Stale once the agent's wait epoch has
    /// moved on (the wait completed first); stale fires are skipped WITHOUT
    /// advancing the clock so unexpired deadlines never distort end times.
    TimeoutFire {
        agent: AgentId,
        epoch: u64,
    },
}

/// What a blocked agent is parked on. Doubles as the "blocked on"
/// diagnostic via `Display`, replacing the `format!` that used to allocate
/// on every blocking wait — the description is rendered only when a
/// deadlock/timeout/watchdog actually looks.
#[derive(Clone, Copy)]
pub(crate) enum BlockedOn {
    Flag { flag: Flag, cmp: Cmp, value: u64 },
    Barrier(Barrier),
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Flag { flag, cmp, value } => {
                write!(f, "flag #{} {:?} {}", flag.0, cmp, value)
            }
            BlockedOn::Barrier(b) => write!(f, "barrier #{}", b.0),
        }
    }
}

/// Heap key for the arena'd event queue: 20 bytes of ordering data. The
/// action payload lives in the slab at `slot`, so heap sift operations move
/// small keys instead of whole `Action`s (which embed clocks and boxed
/// closures).
#[derive(PartialEq, Eq)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    // Reversed: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

pub(crate) enum Turn {
    Scheduler,
    Agent(AgentId),
}

struct FlagState {
    value: u64,
    waiters: Vec<(AgentId, Cmp, u64)>,
}

struct BarrierState {
    parties: usize,
    waiting: Vec<AgentId>,
}

struct AgentSlot {
    name: Sym,
    cv: Arc<Condvar>,
    handle: Option<JoinHandle<()>>,
    alive: bool,
    /// Logical identity (e.g. `"pe2"`) used as the node label in the
    /// wait-for graph. Set via [`AgentCtx::set_identity`].
    identity: Option<Sym>,
    /// Identity of the peer this agent declared it is waiting for
    /// (wait-for-graph edge); cleared when the wait completes.
    waiting_for: Option<Sym>,
    /// The flag/barrier the agent is currently parked on, if any. Also the
    /// source of the human-readable "blocked on" description.
    wait_target: Option<BlockedOn>,
    /// Bumped on every blocking wait; guards [`Action::TimeoutFire`]
    /// staleness.
    wait_epoch: u64,
    /// Set by a fired timeout; consumed by the agent when it resumes.
    timed_out: bool,
}

pub(crate) struct Central {
    pub(crate) turn: Turn,
    pub(crate) clock: SimTime,
    pub(crate) shutdown: bool,
    seq: u64,
    /// Ordering keys; payloads live in `slab`.
    queue: BinaryHeap<HeapKey>,
    /// Arena of pending actions, indexed by `HeapKey::slot`.
    slab: Vec<Option<Action>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Total events popped from the queue (the engine's throughput unit).
    events: u64,
    flags: Vec<FlagState>,
    barriers: Vec<BarrierState>,
    agents: Vec<AgentSlot>,
    /// Identity label -> agent indices that declared it, in registration
    /// order. Maintained incrementally by [`Central::set_identity`] so
    /// wait-cycle detection never rebuilds a map from scratch.
    by_identity: HashMap<Sym, Vec<usize>>,
    live_agents: usize,
    pub(crate) request: Option<(AgentId, Request)>,
    pub(crate) trace: Trace,
    trace_enabled: bool,
    /// Shared with [`Shared::pool`]; lets lock-holding diagnostics resolve
    /// names without reaching outside `Central`.
    pool: Arc<SymPool>,
    /// Happens-before tracker; `None` (the default) records nothing.
    pub(crate) hb: Option<Arc<HbTracker>>,
    /// Seed for the wake-order perturbation; `None` keeps FIFO tie-breaks.
    jitter: Option<u64>,
    /// Draw counter for the jitter stream (advances per permutation step).
    jitter_ctr: u64,
}

impl Central {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push(&mut self, time: SimTime, action: Action) {
        let seq = self.next_seq();
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(action);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Some(action));
                s
            }
        };
        self.queue.push(HeapKey { time, seq, slot });
    }

    /// Pop the earliest event, returning its time and payload. The slab
    /// slot is recycled immediately.
    fn pop_event(&mut self) -> Option<(SimTime, Action)> {
        let key = self.queue.pop()?;
        self.events += 1;
        let action = self.slab[key.slot as usize]
            .take()
            .expect("queued slab slot is empty");
        self.free.push(key.slot);
        Some((key.time, action))
    }

    /// Time of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|k| k.time)
    }

    /// `name: blocked-on` diagnostics for every live agent — the payload of
    /// a deadlock report. Shared between the unbounded drive loop and the
    /// sharded coordinator's global-deadlock aggregation.
    pub(crate) fn blocked_strings(&self) -> Vec<String> {
        self.agents
            .iter()
            .filter(|a| a.alive)
            .map(|a| match a.wait_target {
                Some(w) => format!("{}: {}", self.pool.resolve(a.name), w),
                None => format!("{}: (unknown wait)", self.pool.resolve(a.name)),
            })
            .collect()
    }

    /// Structured form of [`Central::blocked_strings`]: agent name plus the
    /// raw wait target, so the sharded coordinator can render flag/barrier
    /// ids in a partition-independent (global) numbering.
    pub(crate) fn blocked_details(&self) -> Vec<(String, Option<BlockedOn>)> {
        self.agents
            .iter()
            .filter(|a| a.alive)
            .map(|a| (self.pool.resolve(a.name).to_string(), a.wait_target))
            .collect()
    }

    /// Schedule a future signal application (e.g. a DMA completion).
    pub(crate) fn push_signal(
        &mut self,
        time: SimTime,
        flag: Flag,
        op: SignalOp,
        value: u64,
        stamp: Option<AsyncClock>,
    ) {
        self.push(
            time,
            Action::Signal {
                flag,
                op,
                value,
                stamp,
            },
        );
    }

    /// Schedule a future side-effect closure.
    pub(crate) fn push_call(&mut self, time: SimTime, f: Box<dyn FnOnce() + Send>) {
        self.push(time, Action::Call(f));
    }

    /// Apply a signal to a flag and make every now-satisfied waiter runnable.
    pub(crate) fn apply_signal(
        &mut self,
        flag: Flag,
        op: SignalOp,
        value: u64,
        at: SimTime,
        stamp: Option<AsyncClock>,
    ) {
        if let (Some(hb), Some(s)) = (&self.hb, &stamp) {
            hb.on_signal_deliver(flag, s, at);
        }
        let state = &mut self.flags[flag.0];
        state.value = op.apply(state.value, value);
        let val = state.value;
        let mut woken = Vec::new();
        state.waiters.retain(|&(agent, cmp, target)| {
            if cmp.eval(val, target) {
                woken.push(agent);
                false
            } else {
                true
            }
        });
        if let Some(hb) = &self.hb {
            for &agent in &woken {
                hb.on_wait_satisfied(agent, flag, at);
            }
        }
        self.permute_woken(&mut woken);
        for agent in woken {
            self.clear_wait(agent);
            self.push(at, Action::Resume(agent));
        }
    }

    /// Seeded Fisher–Yates permutation of a batch of simultaneously woken
    /// agents. The members of such a batch are mutually concurrent (all
    /// released by the same signal application or barrier arrival), so any
    /// relative wake order is a valid schedule — this is the perturbation
    /// lever used by the conformance harness. A no-op unless
    /// [`Engine::set_wake_jitter`] was called.
    fn permute_woken(&mut self, woken: &mut [AgentId]) {
        let Some(seed) = self.jitter else { return };
        for i in (1..woken.len()).rev() {
            self.jitter_ctr += 1;
            let j = (mix64(seed ^ self.jitter_ctr) % (i as u64 + 1)) as usize;
            woken.swap(i, j);
        }
    }

    /// Forget a completed (or cancelled) blocking wait.
    fn clear_wait(&mut self, agent: AgentId) {
        let slot = &mut self.agents[agent.0];
        slot.waiting_for = None;
        slot.wait_target = None;
    }

    /// Declare an agent's identity, keeping the `by_identity` index current.
    pub(crate) fn set_identity(&mut self, id: AgentId, identity: Sym) {
        let slot = &mut self.agents[id.0];
        if slot.identity == Some(identity) {
            return;
        }
        if let Some(old) = slot.identity.take() {
            if let Some(v) = self.by_identity.get_mut(&old) {
                v.retain(|&i| i != id.0);
            }
        }
        self.agents[id.0].identity = Some(identity);
        self.by_identity.entry(identity).or_default().push(id.0);
    }

    /// Consume the agent's timed-out marker (set by a fired deadline).
    pub(crate) fn take_timed_out(&mut self, id: AgentId) -> bool {
        std::mem::take(&mut self.agents[id.0].timed_out)
    }

    /// Snapshot of every live blocked agent, for watchdog diagnosis.
    pub(crate) fn blocked_snapshot(&self) -> Vec<BlockedInfo> {
        self.agents
            .iter()
            .filter(|a| a.alive && a.wait_target.is_some())
            .map(|a| BlockedInfo {
                name: self.pool.resolve(a.name).to_string(),
                identity: a.identity.map(|s| self.pool.resolve(s).to_string()),
                blocked_on: a.wait_target.map(|w| w.to_string()).unwrap_or_default(),
                waiting_for: a.waiting_for.map(|s| self.pool.resolve(s).to_string()),
            })
            .collect()
    }

    /// The live blocked agent currently holding `ident`, preferring the most
    /// recent registrant when several agents share an identity (a heuristic,
    /// fine for diagnostics).
    fn blocked_with_identity(&self, ident: Sym) -> Option<usize> {
        self.by_identity
            .get(&ident)?
            .iter()
            .rev()
            .copied()
            .find(|&i| matches!(&self.agents[i], a if a.alive && a.wait_target.is_some()))
    }

    /// Find a wait-for cycle among blocked agents, following the
    /// `waiting_for` edges declared via `expected_from` annotations. Edges
    /// point at identity labels, resolved through the incrementally
    /// maintained `by_identity` index. Returns the agent NAMES on the first
    /// cycle found, or an empty vector if the blocked set is acyclic /
    /// unannotated.
    pub(crate) fn wait_cycle(&self) -> Vec<String> {
        for (start, a) in self.agents.iter().enumerate() {
            if !(a.alive && a.wait_target.is_some()) {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if let Some(pos) = path.iter().position(|&p| p == cur) {
                    return path[pos..]
                        .iter()
                        .map(|&p| self.pool.resolve(self.agents[p].name).to_string())
                        .collect();
                }
                path.push(cur);
                let Some(next_ident) = self.agents[cur].waiting_for else {
                    break;
                };
                let Some(next) = self.blocked_with_identity(next_ident) else {
                    break;
                };
                cur = next;
            }
        }
        Vec::new()
    }

    pub(crate) fn flag_value(&self, flag: Flag) -> u64 {
        self.flags[flag.0].value
    }

    pub(crate) fn new_flag(&mut self, init: u64) -> Flag {
        self.flags.push(FlagState {
            value: init,
            waiters: Vec::new(),
        });
        Flag(self.flags.len() - 1)
    }

    pub(crate) fn new_barrier(&mut self, parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(BarrierState {
            parties,
            waiting: Vec::new(),
        });
        Barrier(self.barriers.len() - 1)
    }

    pub(crate) fn record_span(&mut self, span: TraceSpan) {
        if self.trace_enabled {
            self.trace.push(span);
        }
    }

    /// The agent's name, resolved from the pool (report paths only).
    pub(crate) fn agent_name(&self, id: AgentId) -> Arc<str> {
        self.pool.resolve(self.agents[id.0].name)
    }

    /// The agent's interned name (hot path: span recording).
    pub(crate) fn agent_name_sym(&self, id: AgentId) -> Sym {
        self.agents[id.0].name
    }
}

pub(crate) struct Shared {
    pub(crate) central: Mutex<Central>,
    pub(crate) sched_cv: Condvar,
    /// The engine-wide symbol pool. Deliberately *outside* the central lock
    /// so agents intern labels without serializing on the scheduler.
    pub(crate) pool: Arc<SymPool>,
}

/// The deterministic virtual-time discrete-event engine.
///
/// Typical use:
///
/// ```
/// use sim_des::{Engine, Cmp, SignalOp, us};
///
/// let engine = Engine::new();
/// let flag = engine.flag(0);
/// engine.spawn("producer", move |ctx| {
///     ctx.advance(us(5.0));
///     ctx.signal(flag, SignalOp::Set, 1);
/// });
/// engine.spawn("consumer", move |ctx| {
///     ctx.wait_flag(flag, Cmp::Ge, 1);
///     assert_eq!(ctx.now().as_micros_f64(), 5.0);
/// });
/// let end = engine.run().unwrap();
/// assert_eq!(end.as_micros_f64(), 5.0);
/// ```
pub struct Engine {
    shared: Arc<Shared>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an empty engine at virtual time zero.
    pub fn new() -> Self {
        let pool = Arc::new(SymPool::new());
        Engine {
            shared: Arc::new(Shared {
                central: Mutex::new(Central {
                    turn: Turn::Scheduler,
                    clock: SimTime::ZERO,
                    shutdown: false,
                    seq: 0,
                    queue: BinaryHeap::new(),
                    slab: Vec::new(),
                    free: Vec::new(),
                    events: 0,
                    flags: Vec::new(),
                    barriers: Vec::new(),
                    agents: Vec::new(),
                    by_identity: HashMap::new(),
                    live_agents: 0,
                    request: None,
                    trace: Trace::with_pool(Arc::clone(&pool)),
                    trace_enabled: true,
                    pool: Arc::clone(&pool),
                    hb: None,
                    jitter: None,
                    jitter_ctr: 0,
                }),
                sched_cv: Condvar::new(),
                pool,
            }),
        }
    }

    /// Allocate a signal flag with an initial value.
    pub fn flag(&self, init: u64) -> Flag {
        self.shared.central.lock().new_flag(init)
    }

    /// Allocate a reusable N-party barrier.
    pub fn barrier(&self, parties: usize) -> Barrier {
        self.shared.central.lock().new_barrier(parties)
    }

    /// Current value of a flag (also usable after the run for inspection).
    pub fn flag_value(&self, flag: Flag) -> u64 {
        self.shared.central.lock().flag_value(flag)
    }

    /// Enable or disable span recording (enabled by default).
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.shared.central.lock().trace_enabled = enabled;
    }

    /// Clone the recorded trace (normally read after [`Engine::run`]).
    pub fn trace(&self) -> Trace {
        self.shared.central.lock().trace.clone()
    }

    /// Intern a string in the engine's symbol pool. Pre-intern hot labels
    /// once and pass the [`Sym`] to `busy`/`record` to keep the per-event
    /// path allocation-free.
    pub fn intern(&self, s: &str) -> Sym {
        self.shared.pool.intern(s)
    }

    /// The engine's symbol pool (shared with its trace).
    pub fn pool(&self) -> Arc<SymPool> {
        Arc::clone(&self.shared.pool)
    }

    /// Total events processed (queue pops) so far — the numerator of the
    /// engine's events/sec throughput metric.
    pub fn events_processed(&self) -> u64 {
        self.shared.central.lock().events
    }

    /// Virtual time of the engine clock.
    pub fn now(&self) -> SimTime {
        self.shared.central.lock().clock
    }

    /// Snapshot of every live blocked agent (for watchdog diagnosis).
    pub fn blocked_agents(&self) -> Vec<BlockedInfo> {
        self.shared.central.lock().blocked_snapshot()
    }

    /// Current wait-for cycle among blocked agents, if any (agent names).
    pub fn wait_cycle(&self) -> Vec<String> {
        self.shared.central.lock().wait_cycle()
    }

    /// Spawn an agent, runnable at the current virtual time.
    ///
    /// Returns its id. The closure runs on a dedicated OS thread, but only
    /// when the scheduler hands it the (single) execution token.
    pub fn spawn<'a, F>(&self, name: impl Into<Label<'a>>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx) + Send + 'static,
    {
        let name = name.into().intern(&self.shared.pool);
        spawn_agent(&self.shared, name, None, f)
    }

    /// Enable happens-before tracking, creating the tracker on first call.
    ///
    /// Call before spawning agents so every synchronization edge is seen.
    /// Returns the (shared) tracker for recording memory effects and
    /// reading diagnostics. Tier-1 runs never call this, so the default
    /// cost is a skipped `Option` check per engine operation.
    pub fn enable_hb(&self) -> Arc<HbTracker> {
        let mut g = self.shared.central.lock();
        if g.hb.is_none() {
            g.hb = Some(Arc::new(HbTracker::new()));
        }
        Arc::clone(g.hb.as_ref().expect("just set"))
    }

    /// The happens-before tracker, if [`Engine::enable_hb`] was called.
    pub fn hb(&self) -> Option<Arc<HbTracker>> {
        self.shared.central.lock().hb.clone()
    }

    /// Seed the wake-order perturbation: batches of simultaneously woken
    /// agents (barrier releases, multi-waiter signal applications) are
    /// permuted by a deterministic seeded shuffle instead of FIFO order.
    ///
    /// Every permuted order is a valid schedule of the same program, so a
    /// correct protocol must produce bit-identical results under any seed —
    /// the property the conformance harness asserts. Unset (the default)
    /// keeps the historical FIFO tie-break.
    pub fn set_wake_jitter(&self, seed: u64) {
        self.shared.central.lock().jitter = Some(seed);
    }

    /// Drive the simulation until every agent has finished.
    ///
    /// Returns the final virtual time, or an error on deadlock / agent panic.
    /// On error the engine is shut down: all parked agent threads are
    /// unwound and joined, so the process does not leak threads.
    pub fn run(&self) -> Result<SimTime, SimError> {
        match self.drive(None) {
            Ok(_) => Ok(self.now()),
            Err(e) => {
                self.shutdown();
                Err(e)
            }
        }
    }

    /// Process events strictly earlier than `limit`, then stop.
    ///
    /// This is the shard-side half of conservative parallel execution: a
    /// coordinator that can prove no cross-engine message will arrive
    /// before `limit` (the safe horizon) may run each engine's window
    /// concurrently, then exchange messages via
    /// [`Engine::inject_signal_at`] and advance the horizon.
    ///
    /// Unlike [`Engine::run`], an empty queue with live agents is *not* a
    /// deadlock here — the agents may be waiting on a message the
    /// coordinator has not injected yet — so the engine reports
    /// [`RunStatus::Idle`] and leaves deadlock judgement to the caller.
    /// Errors (panics, aborts, timeouts) surface exactly as in `run`, but
    /// the engine is not shut down; the caller owns teardown across all
    /// its engines (dropping the engine still joins every agent thread).
    pub fn run_until(&self, limit: SimTime) -> Result<RunStatus, SimError> {
        self.drive(Some(limit))
    }

    /// Schedule a signal application at absolute virtual time `at` from
    /// *outside* the engine — the delivery half of a cross-engine message.
    ///
    /// Panics if `at` is earlier than the engine clock: a conservative
    /// coordinator must never deliver into a shard's past (the lookahead
    /// contract guarantees `at >= horizon >= clock`).
    pub fn inject_signal_at(&self, at: SimTime, flag: Flag, op: SignalOp, value: u64) {
        let mut g = self.shared.central.lock();
        assert!(
            at >= g.clock,
            "message injected at {at} is before the engine clock {} — lookahead violated",
            g.clock
        );
        g.push_signal(at, flag, op, value, None);
    }

    /// Time of the earliest pending event, if any (for external
    /// coordinators computing safe horizons).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shared.central.lock().peek_time()
    }

    /// Number of agents that have not finished yet.
    pub fn live_agents(&self) -> usize {
        self.shared.central.lock().live_agents
    }

    /// Structured blocked-agent info (name, wait target) for the sharded
    /// coordinator's canonical deadlock rendering.
    pub(crate) fn blocked_details(&self) -> Vec<(String, Option<BlockedOn>)> {
        self.shared.central.lock().blocked_details()
    }

    fn drive(&self, limit: Option<SimTime>) -> Result<RunStatus, SimError> {
        let mut g = self.shared.central.lock();
        loop {
            let next = g.peek_time();
            let runnable = match (next, limit) {
                (Some(t), Some(l)) => t < l,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if !runnable {
                if next.is_none() && g.live_agents == 0 {
                    return Ok(RunStatus::Done);
                }
                if limit.is_some() {
                    return Ok(RunStatus::Idle { next });
                }
                let time = g.clock;
                let blocked = g.blocked_strings();
                let cycle = g.wait_cycle();
                return Err(SimError::Deadlock {
                    time,
                    blocked,
                    cycle,
                });
            }
            let (time, action) = g.pop_event().expect("peeked event vanished");
            if let Action::TimeoutFire { agent, epoch } = action {
                let live = {
                    let slot = &g.agents[agent.0];
                    slot.alive && slot.wait_epoch == epoch && slot.wait_target.is_some()
                };
                if !live {
                    // The wait completed first; drop the deadline WITHOUT
                    // touching the clock so it cannot distort end times.
                    continue;
                }
                g.clock = time;
                match g.agents[agent.0].wait_target {
                    Some(BlockedOn::Flag { flag, .. }) => {
                        g.flags[flag.0].waiters.retain(|&(a, _, _)| a != agent);
                    }
                    Some(BlockedOn::Barrier(b)) => {
                        g.barriers[b.0].waiting.retain(|&a| a != agent);
                    }
                    None => unreachable!("live timeout without wait target"),
                }
                g.clear_wait(agent);
                g.agents[agent.0].timed_out = true;
                let t = g.clock;
                g.push(t, Action::Resume(agent));
                continue;
            }
            debug_assert!(time >= g.clock, "time went backwards");
            g.clock = time;
            match action {
                Action::TimeoutFire { .. } => unreachable!("handled above"),
                Action::Signal {
                    flag,
                    op,
                    value,
                    stamp,
                } => {
                    let at = g.clock;
                    g.apply_signal(flag, op, value, at, stamp);
                }
                Action::Call(f) => {
                    // Run outside the lock: the closure may take unrelated
                    // locks (buffer mutexes) but must not re-enter the engine.
                    drop(g);
                    f();
                    g = self.shared.central.lock();
                }
                Action::Resume(agent) => {
                    // Hand the token to the agent and wait for it back.
                    g.turn = Turn::Agent(agent);
                    let cv = Arc::clone(&g.agents[agent.0].cv);
                    cv.notify_one();
                    while !matches!(g.turn, Turn::Scheduler) {
                        self.shared.sched_cv.wait(&mut g);
                    }
                    let (id, request) = g.request.take().expect("agent yielded without request");
                    debug_assert_eq!(id, agent);
                    match request {
                        Request::Advance(dur) => {
                            let t = g.clock + dur;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::WaitFlag {
                            flag,
                            cmp,
                            value,
                            deadline,
                            expected_from,
                        } => {
                            if cmp.eval(g.flags[flag.0].value, value) {
                                let t = g.clock;
                                if let Some(hb) = &g.hb {
                                    hb.on_wait_satisfied(agent, flag, t);
                                }
                                g.push(t, Action::Resume(agent));
                            } else {
                                let epoch = {
                                    let slot = &mut g.agents[agent.0];
                                    slot.waiting_for = expected_from;
                                    slot.wait_target = Some(BlockedOn::Flag { flag, cmp, value });
                                    slot.wait_epoch += 1;
                                    slot.wait_epoch
                                };
                                g.flags[flag.0].waiters.push((agent, cmp, value));
                                if let Some(d) = deadline {
                                    let d = d.max(g.clock);
                                    g.push(d, Action::TimeoutFire { agent, epoch });
                                }
                            }
                        }
                        Request::Barrier {
                            barrier: b,
                            deadline,
                        } => {
                            let epoch = {
                                let slot = &mut g.agents[agent.0];
                                slot.wait_target = Some(BlockedOn::Barrier(b));
                                slot.wait_epoch += 1;
                                slot.wait_epoch
                            };
                            g.barriers[b.0].waiting.push(agent);
                            if g.barriers[b.0].waiting.len() == g.barriers[b.0].parties {
                                let t = g.clock;
                                let mut woken = std::mem::take(&mut g.barriers[b.0].waiting);
                                if let Some(hb) = &g.hb {
                                    hb.on_barrier_release(&woken, b, t);
                                }
                                g.permute_woken(&mut woken);
                                for w in woken {
                                    g.clear_wait(w);
                                    g.push(t, Action::Resume(w));
                                }
                            } else if let Some(d) = deadline {
                                let d = d.max(g.clock);
                                g.push(d, Action::TimeoutFire { agent, epoch });
                            }
                        }
                        Request::Yield => {
                            let t = g.clock;
                            g.push(t, Action::Resume(agent));
                        }
                        Request::Finished(kind) => {
                            g.agents[agent.0].alive = false;
                            g.live_agents -= 1;
                            if let Some(h) = g.agents[agent.0].handle.take() {
                                // The thread is past its last handoff; join is
                                // immediate and keeps the process tidy.
                                drop(g);
                                let _ = h.join();
                                g = self.shared.central.lock();
                            }
                            match kind {
                                FinishKind::Ok => {}
                                FinishKind::Panic(message) => {
                                    let agent_name = g.agent_name(agent).to_string();
                                    return Err(SimError::AgentPanic {
                                        agent: agent_name,
                                        message,
                                    });
                                }
                                FinishKind::Abort(err) => return Err(err),
                            }
                        }
                    }
                }
            }
        }
    }

    /// Unwind and join every still-parked agent thread.
    pub(crate) fn shutdown(&self) {
        let mut g = self.shared.central.lock();
        g.shutdown = true;
        let cvs: Vec<Arc<Condvar>> = g
            .agents
            .iter()
            .filter(|a| a.alive)
            .map(|a| Arc::clone(&a.cv))
            .collect();
        for cv in &cvs {
            cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = g
            .agents
            .iter_mut()
            .filter_map(|a| a.handle.take())
            .collect();
        drop(g);
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sentinel panic payload used to unwind agents during shutdown.
pub(crate) struct ShutdownUnwind;

pub(crate) fn spawn_agent<F>(
    shared: &Arc<Shared>,
    name: Sym,
    parent: Option<AgentId>,
    f: F,
) -> AgentId
where
    F: FnOnce(&mut AgentCtx) + Send + 'static,
{
    let cv = Arc::new(Condvar::new());
    let id;
    {
        let mut g = shared.central.lock();
        id = AgentId(g.agents.len());
        if let Some(hb) = &g.hb {
            hb.on_spawn(parent, id, g.clock);
        }
        g.agents.push(AgentSlot {
            name,
            cv: Arc::clone(&cv),
            handle: None,
            alive: true,
            identity: None,
            waiting_for: None,
            wait_target: None,
            wait_epoch: 0,
            timed_out: false,
        });
        g.live_agents += 1;
        let t = g.clock;
        g.push(t, Action::Resume(id));
    }
    let thread_shared = Arc::clone(shared);
    let thread_cv = Arc::clone(&cv);
    let handle = std::thread::Builder::new()
        .name(format!("sim-agent-{}", id.0))
        .spawn(move || {
            // Park until the scheduler hands us the token for the first time.
            {
                let mut g = thread_shared.central.lock();
                while !matches!(g.turn, Turn::Agent(a) if a == id) {
                    if g.shutdown {
                        return;
                    }
                    thread_cv.wait(&mut g);
                }
            }
            let mut ctx = AgentCtx::new(Arc::clone(&thread_shared), id, Arc::clone(&thread_cv));
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            let kind = match result {
                Ok(()) => FinishKind::Ok,
                Err(payload) => match payload.downcast::<AbortSim>() {
                    Ok(abort) => FinishKind::Abort(abort.0),
                    Err(payload) => {
                        if payload.downcast_ref::<ShutdownUnwind>().is_some() {
                            // Engine-initiated unwind: exit silently, the
                            // engine is already tearing down and holds no
                            // expectations.
                            return;
                        }
                        FinishKind::Panic(render_panic(&*payload))
                    }
                },
            };
            // Final handoff: report completion to the scheduler.
            let mut g = thread_shared.central.lock();
            g.request = Some((id, Request::Finished(kind)));
            g.turn = Turn::Scheduler;
            thread_shared.sched_cv.notify_one();
        })
        .expect("failed to spawn agent thread");
    shared.central.lock().agents[id.0].handle = Some(handle);
    id
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}
