//! Conservative intra-run parallel simulation: one run across all cores.
//!
//! [`ShardedEngine`] partitions the agents of a single simulation into
//! *shards*, each backed by its own serial [`Engine`] (own slab event
//! queue, own scheduler thread), and executes the shards concurrently
//! under a classic conservative synchronization protocol (Chandy–Misra
//! with a safe-horizon barrier, à la bounded lag):
//!
//! 1. Every cross-shard interaction is a timestamped message sent through
//!    an [`XPort`] with a declared minimum `delay >= lookahead` — for
//!    GPU-fabric workloads the lookahead is the smallest cross-shard link
//!    latency of the topology (see `gpu_sim::Topology::partition_lookahead`).
//! 2. Each window, the coordinator computes the global safe horizon
//!    `H = min(next event time over all shards) + lookahead`. Any message
//!    produced during the window is sent at `t >= min_next` and arrives at
//!    `t + delay >= H`, so every event strictly before `H` is safe to
//!    execute without hearing from any other shard.
//! 3. All shards run their windows concurrently ([`Engine::run_until`]),
//!    then the coordinator drains the outboxes, sorts messages by the
//!    shard-count-independent key `(time, sender, sequence)`, injects them
//!    ([`Engine::inject_signal_at`]), and advances the horizon.
//!
//! # Determinism
//!
//! Virtual end time, total event count, merged trace, and flag values are
//! **bit-identical at every shard count**, and identical to the same
//! protocol written against a single serial [`Engine`] (the differential
//! suites assert this byte-for-byte):
//!
//! * message timestamps depend only on issue time and declared delay,
//!   never on wall-clock interleaving;
//! * same-arrival-time deliveries are ordered by `(sender, sequence)`,
//!   where senders are numbered by global spawn order — a key that does
//!   not change when the partition changes;
//! * merged outputs ([`ShardedEngine::merged_trace`],
//!   [`ShardedEngine::merged_diagnostics`], deadlock reports) are sorted
//!   by virtual time and agent *name*, never by shard or local id.
//!
//! The lookahead must be a strict lower bound on every cross-shard delay;
//! [`XPort::send`] enforces it per message and
//! [`Engine::inject_signal_at`] enforces the derived no-past-delivery
//! invariant, so a mis-declared lookahead fails loudly instead of
//! silently diverging.

use crate::agent::{AgentCtx, AgentId};
use crate::engine::{BlockedOn, Engine, RunStatus, SimError};
use crate::hb::HbTracker;
use crate::intern::Label;
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Trace, TraceSpan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier as HostBarrier, Mutex};

/// A flag owned by one shard, addressable from any shard.
///
/// Agents on the owning shard wait on it with the ordinary blocking API
/// (via [`RemoteFlag::local`]); agents elsewhere signal it through
/// [`XPort::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteFlag {
    /// The shard whose engine owns the flag.
    pub shard: usize,
    /// The flag within that shard's engine.
    flag: Flag,
}

impl RemoteFlag {
    /// The underlying engine flag — valid **only** inside the owning
    /// shard (local waits/reads). Cross-shard access must go through
    /// [`XPort::send`].
    pub fn local(&self) -> Flag {
        self.flag
    }
}

/// One in-flight cross-shard message: a signal application at an absolute
/// virtual time, tagged with its deterministic delivery key.
struct XMsg {
    at: SimTime,
    dst: RemoteFlag,
    op: SignalOp,
    value: u64,
    /// Global spawn index of the sender — partition-independent.
    sender: u64,
    /// Per-sender send counter — orders same-time messages from one agent.
    sn: u64,
}

/// An agent's handle for sending timestamped signals to other shards.
///
/// Created by [`ShardedEngine::spawn_on`] and handed to the agent closure.
/// Same-shard destinations take the ordinary engine path
/// ([`AgentCtx::schedule_signal`]); cross-shard destinations are buffered
/// in the shard's outbox and delivered by the coordinator at the next
/// window boundary — by construction never earlier than the safe horizon.
pub struct XPort {
    shard: usize,
    sender: u64,
    sn: u64,
    lookahead: SimDur,
    outbox: Arc<Mutex<Vec<XMsg>>>,
}

impl XPort {
    /// Apply `op`/`value` to `dst` after `delay` of virtual time.
    ///
    /// For a cross-shard destination `delay` must be at least the engine's
    /// lookahead (the conservative contract); same-shard sends may use any
    /// delay. Panics on a violation — an undersized delay is a modeling
    /// bug that would otherwise silently break determinism.
    pub fn send(
        &mut self,
        ctx: &AgentCtx,
        dst: RemoteFlag,
        op: SignalOp,
        value: u64,
        delay: SimDur,
    ) {
        if dst.shard == self.shard {
            ctx.schedule_signal(dst.local(), op, value, delay);
            return;
        }
        assert!(
            delay >= self.lookahead,
            "cross-shard send with delay {delay} below the declared lookahead {} — \
             the conservative horizon would be unsound",
            self.lookahead
        );
        let sn = self.sn;
        self.sn += 1;
        self.outbox.lock().unwrap().push(XMsg {
            at: ctx.now() + delay,
            dst,
            op,
            value,
            sender: self.sender,
            sn,
        });
    }

    /// The engine-wide conservative lookahead this port enforces.
    pub fn lookahead(&self) -> SimDur {
        self.lookahead
    }

    /// The shard this port's agent runs on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// A partitioned simulation: `S` serial engines coupled by a conservative
/// safe-horizon coordinator. See the module docs for the protocol.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    lookahead: SimDur,
    outboxes: Vec<Arc<Mutex<Vec<XMsg>>>>,
    next_global: u64,
    /// Per-shard map from local flag index to the global allocation index
    /// (= `flag_on` call order), used to render partition-independent
    /// deadlock reports.
    flag_ids: Vec<Vec<(usize, usize)>>,
    /// Same for barriers (`barrier_on` call order).
    barrier_ids: Vec<Vec<(usize, usize)>>,
    next_flag: usize,
    next_barrier: usize,
    /// Count of cross-shard deliveries performed (diagnostic only).
    delivered: AtomicU64,
}

impl ShardedEngine {
    /// Create `shards` engines coupled with the given conservative
    /// `lookahead` (the minimum virtual-time delay of any cross-shard
    /// message — for topology-partitioned workloads, the smallest
    /// cross-region link latency).
    ///
    /// Panics if `shards == 0` or the lookahead is zero (a zero lookahead
    /// admits no safe horizon: the window could never advance).
    pub fn new(shards: usize, lookahead: SimDur) -> ShardedEngine {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            !lookahead.is_zero(),
            "conservative execution needs a nonzero lookahead"
        );
        ShardedEngine {
            shards: (0..shards).map(|_| Engine::new()).collect(),
            lookahead,
            outboxes: (0..shards)
                .map(|_| Arc::new(Mutex::new(Vec::new())))
                .collect(),
            next_global: 0,
            flag_ids: vec![Vec::new(); shards],
            barrier_ids: vec![Vec::new(); shards],
            next_flag: 0,
            next_barrier: 0,
            delivered: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead the coordinator windows on.
    pub fn lookahead(&self) -> SimDur {
        self.lookahead
    }

    /// Allocate a flag owned by `shard`.
    ///
    /// Like [`ShardedEngine::spawn_on`], call order defines a global flag
    /// numbering used for partition-independent diagnostics — allocate
    /// flags in the same order at every shard count.
    pub fn flag_on(&mut self, shard: usize, init: u64) -> RemoteFlag {
        let flag = self.shards[shard].flag(init);
        self.flag_ids[shard].push((flag.0, self.next_flag));
        self.next_flag += 1;
        RemoteFlag { shard, flag }
    }

    /// Allocate an N-party barrier local to `shard` (barriers never span
    /// shards; cross-shard rendezvous is built from messages).
    pub fn barrier_on(&mut self, shard: usize, parties: usize) -> Barrier {
        let b = self.shards[shard].barrier(parties);
        self.barrier_ids[shard].push((b.0, self.next_barrier));
        self.next_barrier += 1;
        b
    }

    /// Current value of a flag (normally read after [`ShardedEngine::run`]).
    pub fn flag_value(&self, flag: RemoteFlag) -> u64 {
        self.shards[flag.shard].flag_value(flag.local())
    }

    /// Enable or disable span recording on every shard.
    pub fn set_trace_enabled(&self, enabled: bool) {
        for e in &self.shards {
            e.set_trace_enabled(enabled);
        }
    }

    /// Enable happens-before tracking on every shard.
    ///
    /// Tracking is per-shard: synchronization edges inside a shard are
    /// recorded exactly as in the serial engine, while cross-shard
    /// deliveries arrive stampless (an injected message carries no vector
    /// clock). Waits satisfied by injected signals still produce
    /// wait-satisfied events, so protocol diagnostics remain comparable
    /// across shard counts.
    pub fn enable_hb(&self) -> Vec<Arc<HbTracker>> {
        self.shards.iter().map(|e| e.enable_hb()).collect()
    }

    /// Seed the wake-order perturbation on every shard (see
    /// [`Engine::set_wake_jitter`]).
    pub fn set_wake_jitter(&self, seed: u64) {
        for e in &self.shards {
            e.set_wake_jitter(seed);
        }
    }

    /// Spawn an agent on `shard`. The closure receives the agent context
    /// plus its [`XPort`] for cross-shard sends.
    ///
    /// Call order defines the global sender numbering used to tie-break
    /// same-time message deliveries, so spawn agents in the same order at
    /// every shard count (partition placement may differ freely).
    pub fn spawn_on<'a, F>(&mut self, shard: usize, name: impl Into<Label<'a>>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx, &mut XPort) + Send + 'static,
    {
        let sender = self.next_global;
        self.next_global += 1;
        let mut port = XPort {
            shard,
            sender,
            sn: 0,
            lookahead: self.lookahead,
            outbox: Arc::clone(&self.outboxes[shard]),
        };
        self.shards[shard].spawn(name, move |ctx| f(ctx, &mut port))
    }

    /// Total events processed across all shards (queue pops — the same
    /// throughput unit as [`Engine::events_processed`]).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|e| e.events_processed()).sum()
    }

    /// Cross-shard messages delivered so far (diagnostic; counts only
    /// mailbox deliveries, not same-shard sends).
    pub fn cross_messages(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Drive all shards to completion, one host worker thread per shard.
    ///
    /// Returns the final virtual time (the maximum over shards), or the
    /// first error by shard index. On error every shard is shut down so no
    /// agent thread leaks. A global deadlock (no events anywhere, no
    /// messages in flight, live agents remain) is reported with the
    /// blocked agents of *all* shards, sorted by agent name so the report
    /// is identical at every shard count.
    pub fn run(&mut self) -> Result<SimTime, SimError> {
        let s = self.shards.len();
        // Worker control: one start and one end rendezvous per window.
        let start = HostBarrier::new(s + 1);
        let end = HostBarrier::new(s + 1);
        // Horizon for the current window; `None` tells workers to exit.
        let horizon: Mutex<Option<SimTime>> = Mutex::new(None);
        let status: Vec<Mutex<Option<Result<RunStatus, SimError>>>> =
            (0..s).map(|_| Mutex::new(None)).collect();

        let result = std::thread::scope(|scope| {
            for (i, engine) in self.shards.iter().enumerate() {
                let (start, end, horizon, status) = (&start, &end, &horizon, &status[i]);
                scope.spawn(move || loop {
                    start.wait();
                    let Some(h) = *horizon.lock().unwrap() else {
                        return;
                    };
                    let r = engine.run_until(h);
                    *status.lock().unwrap() = Some(r);
                    end.wait();
                });
            }

            let outcome = loop {
                // Safe horizon: earliest pending event anywhere + lookahead.
                // (Outboxes are always drained before this point, so every
                // in-flight message is already an engine event.)
                let min_next = self.shards.iter().filter_map(|e| e.next_event_time()).min();
                let Some(min_next) = min_next else {
                    let live: usize = self.shards.iter().map(|e| e.live_agents()).sum();
                    if live == 0 {
                        break Ok(self.max_clock());
                    }
                    break Err(self.global_deadlock());
                };
                *horizon.lock().unwrap() = Some(min_next + self.lookahead);
                start.wait();
                end.wait();
                let mut err = None;
                for st in &status {
                    match st.lock().unwrap().take() {
                        Some(Ok(_)) => {}
                        Some(Err(e)) => {
                            err = Some(e);
                            break;
                        }
                        None => unreachable!("worker missed its window"),
                    }
                }
                if let Some(e) = err {
                    break Err(e);
                }
                self.deliver_messages();
            };
            // Release the workers to exit, whatever the outcome.
            *horizon.lock().unwrap() = None;
            start.wait();
            outcome
        });
        if result.is_err() {
            for e in &self.shards {
                e.shutdown();
            }
        }
        result
    }

    /// Drain every outbox and inject the messages in deterministic order:
    /// `(arrival time, global sender, per-sender sequence)` — a key that is
    /// independent of the partition and of wall-clock interleaving.
    fn deliver_messages(&self) {
        let mut msgs: Vec<XMsg> = Vec::new();
        for ob in &self.outboxes {
            msgs.append(&mut ob.lock().unwrap());
        }
        if msgs.is_empty() {
            return;
        }
        msgs.sort_by_key(|m| (m.at, m.sender, m.sn));
        self.delivered
            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        for m in msgs {
            self.shards[m.dst.shard].inject_signal_at(m.at, m.dst.local(), m.op, m.value);
        }
    }

    /// Maximum engine clock over all shards — the virtual end time of the
    /// partitioned run (every event executes in exactly one shard, so this
    /// equals the serial end time).
    fn max_clock(&self) -> SimTime {
        self.shards
            .iter()
            .map(|e| e.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Canonical global deadlock: blocked lines from every shard with flag
    /// and barrier ids rewritten to the global (allocation-order)
    /// numbering, sorted by text — the report does not depend on the
    /// partition. Wait-for cycles may span shards and are not
    /// reconstructed here.
    fn global_deadlock(&self) -> SimError {
        let mut blocked: Vec<String> = Vec::new();
        for (i, e) in self.shards.iter().enumerate() {
            for (name, target) in e.blocked_details() {
                let desc = match target {
                    Some(BlockedOn::Flag { flag, cmp, value }) => {
                        let g = lookup(&self.flag_ids[i], flag.0);
                        format!("flag #{g} {cmp:?} {value}")
                    }
                    Some(BlockedOn::Barrier(b)) => {
                        format!("barrier #{}", lookup(&self.barrier_ids[i], b.0))
                    }
                    None => "(unknown wait)".to_string(),
                };
                blocked.push(format!("{name}: {desc}"));
            }
        }
        blocked.sort();
        SimError::Deadlock {
            time: self.max_clock(),
            blocked,
            cycle: Vec::new(),
        }
    }

    /// Merge every shard's trace into one canonical trace.
    ///
    /// Spans are sorted by `(start, end, agent name, category, label)` and
    /// re-interned into a fresh pool in that order; merged agent ids are
    /// assigned by first appearance of the agent name. The result is
    /// byte-stable across shard counts and across runs.
    pub fn merged_trace(&self) -> Trace {
        /// A span resolved to owned strings: the partition-independent
        /// sort key `(start, end, agent name, category, label)`.
        type ResolvedSpan = (SimTime, SimTime, Arc<str>, crate::trace::Category, Arc<str>);
        let mut rows: Vec<ResolvedSpan> = self
            .shards
            .iter()
            .flat_map(|e| {
                let t = e.trace();
                t.spans()
                    .iter()
                    .map(|s| {
                        (
                            s.start,
                            s.end,
                            t.resolve(s.agent_name),
                            s.category,
                            t.resolve(s.label),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort_by(|a, b| (a.0, a.1, &*a.2, a.3, &*a.4).cmp(&(b.0, b.1, &*b.2, b.3, &*b.4)));
        let mut merged = Trace::new();
        let mut agent_ids: Vec<Arc<str>> = Vec::new();
        for (start, end, agent_name, category, label) in rows {
            let id = match agent_ids.iter().position(|n| **n == *agent_name) {
                Some(i) => i,
                None => {
                    agent_ids.push(Arc::clone(&agent_name));
                    agent_ids.len() - 1
                }
            };
            let span = TraceSpan {
                agent: AgentId(id),
                agent_name: merged.intern(&agent_name),
                start,
                end,
                category,
                label: merged.intern(&label),
            };
            merged.push(span);
        }
        merged
    }

    /// Every happens-before diagnostic from every shard, rendered and
    /// sorted — canonical across shard counts (empty when clean, which is
    /// what the conformance suites assert).
    pub fn merged_diagnostics(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .shards
            .iter()
            .filter_map(|e| e.hb())
            .flat_map(|hb| {
                hb.diagnostics()
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort();
        v
    }

    /// Direct access to one shard's engine (tests, custom instrumentation).
    pub fn shard(&self, i: usize) -> &Engine {
        &self.shards[i]
    }
}

/// Map a shard-local flag/barrier index to its global allocation index.
/// Ids allocated outside [`ShardedEngine::flag_on`]/`barrier_on` (directly
/// on a shard engine) fall back to the local index.
fn lookup(map: &[(usize, usize)], local: usize) -> usize {
    map.iter()
        .find(|(l, _)| *l == local)
        .map(|(_, g)| *g)
        .unwrap_or(local)
}

/// Convenience for tests and workloads: wait on a [`RemoteFlag`] locally.
/// Panics (via the underlying engine) if called from the wrong shard is
/// not detectable; keep waits on the owning shard.
pub fn wait_remote(ctx: &mut AgentCtx, flag: RemoteFlag, cmp: Cmp, value: u64) {
    ctx.wait_flag(flag.local(), cmp, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ns, us};

    /// A two-shard ping-pong across the mailbox: end time and flag values
    /// must match the hand-computed serial schedule.
    #[test]
    fn cross_shard_pingpong_matches_serial_schedule() {
        let look = us(1.0);
        let mut eng = ShardedEngine::new(2, look);
        let fa = eng.flag_on(0, 0);
        let fb = eng.flag_on(1, 0);
        let rounds = 10u64;
        eng.spawn_on(0, "a", move |ctx, port| {
            for i in 1..=rounds {
                port.send(ctx, fb, SignalOp::Set, i, us(1.0));
                ctx.wait_flag(fa.local(), Cmp::Ge, i);
            }
        });
        eng.spawn_on(1, "b", move |ctx, port| {
            for i in 1..=rounds {
                ctx.wait_flag(fb.local(), Cmp::Ge, i);
                port.send(ctx, fa, SignalOp::Set, i, us(1.0));
            }
        });
        let end = eng.run().unwrap();
        // Each round costs one 1 µs hop in each direction.
        assert_eq!(end, SimTime::ZERO + us(2.0) * rounds);
        assert_eq!(eng.flag_value(fa), rounds);
        assert_eq!(eng.flag_value(fb), rounds);
        assert_eq!(eng.cross_messages(), 2 * rounds);
    }

    /// The same program at 1, 2 and 4 shards: end time, event count, and
    /// merged trace are bit-identical.
    fn fanout_program(shards: usize) -> (u64, u64, String) {
        let look = ns(500);
        let agents = 8usize;
        let mut eng = ShardedEngine::new(shards, look);
        let flags: Vec<RemoteFlag> = (0..agents).map(|i| eng.flag_on(i % shards, 0)).collect();
        let done = eng.flag_on(0, 0);
        for i in 0..agents {
            let me = flags[i];
            let next = flags[(i + 1) % agents];
            eng.spawn_on(i % shards, format!("w{i}"), move |ctx, port| {
                let label = ctx.intern("step");
                for r in 1..=20u64 {
                    ctx.busy(
                        crate::trace::Category::Compute,
                        label,
                        ns(700 + 13 * i as u64),
                    );
                    port.send(ctx, next, SignalOp::Add, 1, ns(500));
                    ctx.wait_flag(me.local(), Cmp::Ge, r);
                }
            });
        }
        let last = flags[0];
        eng.spawn_on(0, "watch", move |ctx, _| {
            ctx.wait_flag(last.local(), Cmp::Ge, 20);
            ctx.signal(done.local(), SignalOp::Set, 1);
        });
        let end = eng.run().unwrap();
        assert_eq!(eng.flag_value(done), 1);
        let trace = eng.merged_trace();
        let rendered: String = trace
            .spans()
            .iter()
            .map(|s| {
                format!(
                    "{} {} {} {:?} {}\n",
                    s.start,
                    s.end,
                    trace.resolve(s.agent_name),
                    s.category,
                    trace.resolve(s.label)
                )
            })
            .collect();
        (end.as_nanos(), eng.events_processed(), rendered)
    }

    #[test]
    fn shard_count_is_unobservable() {
        let base = fanout_program(1);
        for shards in [2, 4, 8] {
            assert_eq!(base, fanout_program(shards), "shards={shards} diverged");
        }
    }

    /// Same-shard sends through the port take the ordinary engine path and
    /// may use sub-lookahead delays.
    #[test]
    fn same_shard_send_ignores_lookahead() {
        let mut eng = ShardedEngine::new(2, us(5.0));
        let f = eng.flag_on(0, 0);
        eng.spawn_on(0, "local", move |ctx, port| {
            port.send(ctx, f, SignalOp::Set, 7, ns(1));
            ctx.wait_flag(f.local(), Cmp::Ge, 7);
        });
        eng.run().unwrap();
        assert_eq!(eng.flag_value(f), 7);
        assert_eq!(eng.cross_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "below the declared lookahead")]
    fn undersized_cross_shard_delay_panics() {
        let mut eng = ShardedEngine::new(2, us(5.0));
        let f = eng.flag_on(1, 0);
        eng.spawn_on(0, "bad", move |ctx, port| {
            port.send(ctx, f, SignalOp::Set, 1, ns(10));
        });
        // The panic surfaces as an AgentPanic; unwrap to re-raise the text.
        let err = eng.run().unwrap_err();
        panic!("{err}");
    }

    #[test]
    fn global_deadlock_is_canonical_across_shard_counts() {
        fn run(shards: usize) -> String {
            let mut eng = ShardedEngine::new(shards, us(1.0));
            let fa = eng.flag_on(0, 0);
            let fb = eng.flag_on(shards - 1, 0);
            eng.spawn_on(0, "left", move |ctx, _| {
                ctx.wait_flag(fa.local(), Cmp::Ge, 1);
            });
            eng.spawn_on(shards - 1, "right", move |ctx, _| {
                ctx.advance(us(3.0));
                ctx.wait_flag(fb.local(), Cmp::Ge, 1);
            });
            eng.run().unwrap_err().to_string()
        }
        let serial = run(1);
        assert!(serial.contains("deadlock"), "got: {serial}");
        assert_eq!(serial, run(2));
    }

    /// Pending cross-shard messages keep an otherwise-idle shard alive: a
    /// receiver whose queue is empty is NOT a deadlock while a message is
    /// on its way.
    #[test]
    fn in_flight_message_prevents_false_deadlock() {
        let mut eng = ShardedEngine::new(2, us(1.0));
        let f = eng.flag_on(1, 0);
        eng.spawn_on(0, "sender", move |ctx, port| {
            ctx.advance(us(50.0));
            port.send(ctx, f, SignalOp::Set, 1, us(2.0));
        });
        eng.spawn_on(1, "receiver", move |ctx, _| {
            ctx.wait_flag(f.local(), Cmp::Ge, 1);
            assert_eq!(ctx.now(), SimTime::ZERO + us(52.0));
        });
        let end = eng.run().unwrap();
        assert_eq!(end, SimTime::ZERO + us(52.0));
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let mut eng = ShardedEngine::new(4, us(1.0));
        let f = eng.flag_on(0, 0);
        eng.spawn_on(0, "only", move |ctx, _| {
            ctx.advance(us(1.0));
            ctx.signal(f.local(), SignalOp::Set, 1);
        });
        assert_eq!(eng.run().unwrap(), SimTime::ZERO + us(1.0));
    }

    /// An agent panic in any shard surfaces as the run error and every
    /// other shard is torn down (no leaked threads, no hang).
    #[test]
    fn agent_panic_tears_down_all_shards() {
        let mut eng = ShardedEngine::new(2, us(1.0));
        let f = eng.flag_on(0, 0);
        eng.spawn_on(0, "waiter", move |ctx, _| {
            ctx.wait_flag(f.local(), Cmp::Ge, 1);
        });
        eng.spawn_on(1, "boom", move |ctx, _| {
            ctx.advance(us(1.0));
            panic!("injected");
        });
        match eng.run() {
            Err(SimError::AgentPanic { agent, message }) => {
                assert_eq!(agent, "boom");
                assert!(message.contains("injected"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }
}
