//! String interning for the simulation hot path.
//!
//! Every span, agent name, identity label and wait annotation used to be an
//! owned `String`, cloned on every event — the dominant allocation source in
//! profile. A [`SymPool`] maps each distinct string to a stable [`Sym`]
//! (`u32`) exactly once; the hot path then moves 4-byte keys and the
//! `Display`/report layer resolves them back to text only when a human looks.
//!
//! [`Label`] is the bridge type for public APIs: call sites keep passing
//! `"static str"` / `format!(...)` values unchanged (interned on use), while
//! performance-sensitive callers pre-intern once and pass the [`Sym`].

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A `u32`-keyed interned string, valid within the [`SymPool`] it came from.
///
/// `Sym` is `Copy` and 4 bytes: comparing, hashing and storing one is free
/// compared to the `String` it replaces. Resolve back to text with
/// [`SymPool::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(u32);

impl Sym {
    /// The empty string, pre-interned as key 0 in every pool.
    pub const EMPTY: Sym = Sym(0);

    /// The raw pool index (stable for the pool's lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct PoolInner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe string interner: each distinct string is stored once and
/// addressed by a [`Sym`].
///
/// The pool is shared (`Arc<SymPool>`) between an engine, its trace and its
/// agents; interning an already-known string takes one short lock and one
/// hash lookup, no allocation.
pub struct SymPool {
    inner: Mutex<PoolInner>,
}

impl Default for SymPool {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SymPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("SymPool")
            .field("strings", &g.strings.len())
            .finish()
    }
}

impl SymPool {
    /// Create a pool with only the empty string (= [`Sym::EMPTY`]) interned.
    pub fn new() -> SymPool {
        let empty: Arc<str> = Arc::from("");
        let mut map = HashMap::new();
        map.insert(Arc::clone(&empty), 0);
        SymPool {
            inner: Mutex::new(PoolInner {
                map,
                strings: vec![empty],
            }),
        }
    }

    /// Intern `s`, allocating only the first time this pool sees it.
    pub fn intern(&self, s: &str) -> Sym {
        let mut g = self.inner.lock().unwrap();
        if let Some(&idx) = g.map.get(s) {
            return Sym(idx);
        }
        let idx = u32::try_from(g.strings.len()).expect("symbol pool overflow");
        let owned: Arc<str> = Arc::from(s);
        g.strings.push(Arc::clone(&owned));
        g.map.insert(owned, idx);
        Sym(idx)
    }

    /// Resolve a [`Sym`] back to its text (cheap `Arc` clone, no copy).
    ///
    /// # Panics
    /// Panics if `sym` did not come from this pool.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        let g = self.inner.lock().unwrap();
        Arc::clone(&g.strings[sym.0 as usize])
    }

    /// Number of distinct strings interned (including the empty string).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().strings.len()
    }

    /// `true` only for a pool that somehow lost its empty-string entry —
    /// provided for API completeness alongside [`SymPool::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A span/identity label accepted by the agent-facing APIs.
///
/// Exists so that the 80+ existing `busy`/`record` call sites keep compiling
/// unchanged (`&str` and `format!` both convert), while hot callers can
/// pre-intern a [`Sym`] once and pay nothing per event.
#[derive(Debug, Clone)]
pub enum Label<'a> {
    /// Already interned — the zero-cost path.
    Sym(Sym),
    /// Borrowed text, interned on use.
    Str(&'a str),
    /// Owned text (e.g. a `format!` result), interned on use.
    Owned(String),
}

impl Label<'_> {
    /// Resolve this label to a [`Sym`] in `pool`.
    pub fn intern(self, pool: &SymPool) -> Sym {
        match self {
            Label::Sym(s) => s,
            Label::Str(s) => pool.intern(s),
            Label::Owned(s) => pool.intern(&s),
        }
    }
}

impl From<Sym> for Label<'static> {
    fn from(s: Sym) -> Self {
        Label::Sym(s)
    }
}

impl<'a> From<&'a str> for Label<'a> {
    fn from(s: &'a str) -> Self {
        Label::Str(s)
    }
}

impl<'a> From<&'a String> for Label<'a> {
    fn from(s: &'a String) -> Self {
        Label::Str(s)
    }
}

impl From<String> for Label<'static> {
    fn from(s: String) -> Self {
        Label::Owned(s)
    }
}

// Borrow bridge so `map.get(s: &str)` works on `HashMap<Arc<str>, u32>` —
// provided by std (`Arc<str>: Borrow<str>`); this assertion documents the
// dependency.
const _: fn() = || {
    fn assert_borrow<T: Borrow<str>>() {}
    assert_borrow::<Arc<str>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_stable() {
        let p = SymPool::new();
        let a = p.intern("gpu0.comm");
        let b = p.intern("gpu0.comm");
        assert_eq!(a, b);
        assert_eq!(&*p.resolve(a), "gpu0.comm");
        let c = p.intern("gpu1.comm");
        assert_ne!(a, c);
        assert_eq!(p.len(), 3); // "", and the two labels
    }

    #[test]
    fn empty_is_preinterned() {
        let p = SymPool::new();
        assert_eq!(p.intern(""), Sym::EMPTY);
        assert_eq!(&*p.resolve(Sym::EMPTY), "");
        assert!(!p.is_empty());
    }

    #[test]
    fn label_conversions_cover_all_call_shapes() {
        let p = SymPool::new();
        let pre = p.intern("hot");
        let from_sym: Label<'_> = pre.into();
        let from_str: Label<'_> = "hot".into();
        let owned = String::from("hot");
        let from_ref: Label<'_> = (&owned).into();
        let from_string: Label<'_> = owned.clone().into();
        for l in [from_sym, from_str, from_ref, from_string] {
            assert_eq!(l.intern(&p), pre);
        }
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let p = Arc::new(SymPool::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                let mut syms = Vec::new();
                for i in 0..32 {
                    syms.push(p.intern(&format!("label-{}", i % 8)));
                }
                syms
            }));
        }
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All threads agree on the key for each distinct string.
        for row in &all {
            for (i, s) in row.iter().enumerate() {
                assert_eq!(&*p.resolve(*s), &format!("label-{}", i % 8));
            }
        }
        assert_eq!(p.len(), 9); // "" plus label-0..label-7
    }
}
