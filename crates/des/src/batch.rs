//! Deterministic inter-run parallel sweep driver.
//!
//! A complete simulation (engine + program + topology + fault plan) is an
//! ordinary `Send` value with no global state, so independent runs can
//! execute concurrently on host threads. This module provides the one
//! primitive every sweep in the workspace is built on: [`par_map`], a
//! work-stealing map whose **output order is the input order**, regardless
//! of which worker finishes which case first. Virtual time stays strictly
//! per-run; cross-run determinism comes purely from indexing results by
//! case position, so a sweep report renders byte-identically at any worker
//! count (see DESIGN.md, "Determinism under parallel sweeps").
//!
//! The pool is a plain `std::thread::scope` fan-out over an atomic work
//! index — the workspace builds offline, so this is the rayon-shaped
//! driver without the rayon dependency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not say: the
/// `SIM_DES_JOBS` environment override when set, otherwise the host's
/// available parallelism, or 1 when that cannot be determined.
///
/// Panics on a malformed `SIM_DES_JOBS` (non-numeric or zero) — library
/// callers get a loud failure; CLIs that want exit code 2 instead should
/// validate with [`env_jobs`] first.
pub fn default_jobs() -> usize {
    match env_jobs() {
        Ok(Some(jobs)) => jobs,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(msg) => panic!("{msg}"),
    }
}

/// Strictly parse the `SIM_DES_JOBS` environment override.
///
/// Returns `Ok(None)` when unset, `Ok(Some(n))` for a positive integer, and
/// `Err(description)` for anything else (empty, non-numeric, zero). CLIs
/// call this up front so garbage exits with status 2 instead of panicking
/// deep inside a sweep.
pub fn env_jobs() -> Result<Option<usize>, String> {
    let Some(raw) = std::env::var_os("SIM_DES_JOBS") else {
        return Ok(None);
    };
    let raw = raw.to_string_lossy();
    match raw.parse::<usize>() {
        Ok(0) => Err("SIM_DES_JOBS must be a positive integer, got 0".to_string()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "SIM_DES_JOBS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Map `f` over `items` on `jobs` worker threads, returning results **in
/// input order**.
///
/// * `jobs <= 1` (or a single item) runs serially on the caller's thread —
///   the parallel and serial paths produce identical output by
///   construction, which the sweep property tests assert byte-for-byte.
/// * Workers claim items through an atomic cursor, so scheduling is dynamic
///   (long cases don't convoy short ones) while the result vector is
///   assembled by item index, not completion order.
/// * A panic in `f` propagates to the caller once all workers have stopped
///   (the scope joins every thread before unwinding).
///
/// ```
/// let squares = sim_des::batch::par_map(4, (0..100u64).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("work item claimed twice");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("batch item {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_at_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, items.clone(), |x| x * 3 + 1);
        for jobs in [2, 3, 8, 64] {
            let parallel = par_map(jobs, items.clone(), |x| x * 3 + 1);
            assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(par_map(16, vec![1, 2], |x| x + 1), vec![2, 3]);
        assert_eq!(par_map(16, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn dynamic_scheduling_covers_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map(4, (0..1000u64).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            par_map(4, (0..32u32).collect(), |x| {
                if x == 17 {
                    panic!("injected");
                }
                x
            })
        });
        assert!(r.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// One test owns every SIM_DES_JOBS scenario: tests run concurrently
    /// and the environment is process-global, so splitting these into
    /// separate `#[test]`s would race.
    #[test]
    fn sim_des_jobs_env_override() {
        // Restore the (unset) state on every exit path.
        struct Unset;
        impl Drop for Unset {
            fn drop(&mut self) {
                std::env::remove_var("SIM_DES_JOBS");
            }
        }
        let _guard = Unset;

        std::env::remove_var("SIM_DES_JOBS");
        assert_eq!(env_jobs(), Ok(None));

        std::env::set_var("SIM_DES_JOBS", "3");
        assert_eq!(env_jobs(), Ok(Some(3)));
        assert_eq!(default_jobs(), 3);

        std::env::set_var("SIM_DES_JOBS", "0");
        assert!(env_jobs().unwrap_err().contains("got 0"));

        std::env::set_var("SIM_DES_JOBS", "many");
        assert!(env_jobs().unwrap_err().contains("\"many\""));
        assert!(std::panic::catch_unwind(default_jobs).is_err());
    }

    #[test]
    fn nested_simulations_run_concurrently_and_identically() {
        // Whole DES runs as batch items: each spawns its own agent threads.
        let runs: Vec<u64> = (0..12).collect();
        let end_times = |jobs: usize| {
            par_map(jobs, runs.clone(), |seed| {
                let engine = crate::Engine::new();
                let f = engine.flag(0);
                engine.spawn("producer", move |ctx| {
                    ctx.advance(crate::ns(100 + seed * 7));
                    ctx.signal(f, crate::SignalOp::Set, 1);
                });
                engine.spawn("consumer", move |ctx| {
                    ctx.wait_flag(f, crate::Cmp::Ge, 1);
                });
                engine.run().unwrap().as_nanos()
            })
        };
        assert_eq!(end_times(1), end_times(8));
    }
}
