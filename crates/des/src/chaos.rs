//! Deterministic chaos engineering: fault-plan serialization, outcome
//! taxonomy, and schedule shrinking.
//!
//! The chaos engine (driven from the bench crate, which can see the
//! workloads) systematically explores [`FaultPlan`] space and classifies
//! every run against explicit **recovery invariants**:
//!
//! 1. **Bit-identical recovery** — a run that completes must produce the
//!    exact result of the fault-free baseline (or, in degraded mode, the
//!    documented quorum result);
//! 2. **Bounded recovery time** — virtual completion time stays within a
//!    stated budget of the baseline;
//! 3. **No unattributed hang** — every non-completion must surface a
//!    [`SimError::Timeout`]/[`SimError::Deadlock`] with a wait-for graph,
//!    or a checker diagnostic (an [`SimError::AgentPanic`] carrying one).
//!
//! This module holds the *pure data* half of the engine: a hand-rolled JSON
//! round-trip for [`FaultPlan`] (the workspace has no serde — reproducers
//! must be replayable from a single file), the [`ChaosOutcome`] taxonomy
//! every schedule is classified into, and [`shrink`] — a delta-debugging
//! minimizer that reduces a failing plan to a 1-minimal fault list and then
//! tightens injection windows, so every finding ships as a minimal
//! replayable reproducer.

use crate::engine::SimError;
use crate::fault::{CrashFault, DropFault, FaultPlan, LinkFault, StragglerFault};
use crate::time::SimTime;

// ---------------------------------------------------------------------------
// Outcome taxonomy
// ---------------------------------------------------------------------------

/// Classification of one fault schedule's run against the recovery
/// invariants. The first four are acceptable outcomes; the rest are
/// invariant violations the shrinker turns into minimal reproducers.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosOutcome {
    /// Completed with a result bit-identical to the fault-free baseline.
    CompletedIdentical,
    /// Completed in degraded mode: the surviving quorum (sorted PE ids)
    /// produced the documented degraded result.
    CompletedDegraded {
        /// The PEs that contributed to the result, ascending.
        quorum: Vec<usize>,
    },
    /// Did not complete, but the failure is attributed: a timeout or
    /// deadlock with a wait-for graph.
    AttributedTimeout {
        /// Human-readable attribution (blocked agents / cycle).
        detail: String,
    },
    /// Did not complete, but a diagnostic names the cause (checker
    /// diagnostic, partition report, retry exhaustion, agent panic).
    AttributedDiagnostic {
        /// Human-readable diagnostic text.
        detail: String,
    },
    /// VIOLATION: completed but the result silently differs from the
    /// baseline (or from the documented quorum result).
    SilentDivergence {
        /// What diverged (checksums, residuals, ...).
        detail: String,
    },
    /// VIOLATION: did not complete and no timeout/diagnostic attributes it.
    UnattributedHang {
        /// Whatever the run reported (or nothing).
        detail: String,
    },
    /// VIOLATION: completed correctly but recovery blew the virtual-time
    /// budget relative to the fault-free baseline.
    UnboundedRecovery {
        /// The observed-vs-budget numbers.
        detail: String,
    },
}

impl ChaosOutcome {
    /// True when the outcome violates a recovery invariant.
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            ChaosOutcome::SilentDivergence { .. }
                | ChaosOutcome::UnattributedHang { .. }
                | ChaosOutcome::UnboundedRecovery { .. }
        )
    }

    /// Short stable label used in reports (and in report diffs).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosOutcome::CompletedIdentical => "completed-identical",
            ChaosOutcome::CompletedDegraded { .. } => "completed-degraded",
            ChaosOutcome::AttributedTimeout { .. } => "attributed-timeout",
            ChaosOutcome::AttributedDiagnostic { .. } => "attributed-diagnostic",
            ChaosOutcome::SilentDivergence { .. } => "VIOLATION:silent-divergence",
            ChaosOutcome::UnattributedHang { .. } => "VIOLATION:unattributed-hang",
            ChaosOutcome::UnboundedRecovery { .. } => "VIOLATION:unbounded-recovery",
        }
    }
}

/// Classify a non-completion: every [`SimError`] the engine can surface is
/// an *attributed* failure — deadlocks and timeouts carry the wait-for
/// graph, panics carry the diagnostic text (the communication layers panic
/// with structured messages such as `PartitionedNetwork ...` or
/// `retries exhausted ...`). An unattributed hang is therefore only
/// possible if a runner swallows an error, which the chaos driver checks.
pub fn classify_error(err: &SimError) -> ChaosOutcome {
    match err {
        SimError::Deadlock {
            time,
            cycle,
            blocked,
        } => ChaosOutcome::AttributedTimeout {
            detail: if cycle.is_empty() {
                format!("deadlock at {time}: blocked [{}]", blocked.join("; "))
            } else {
                format!("deadlock at {time}: cycle [{}]", cycle.join(" -> "))
            },
        },
        SimError::Timeout {
            time,
            agent,
            waiting_on,
            cycle,
            ..
        } => ChaosOutcome::AttributedTimeout {
            detail: if cycle.is_empty() {
                format!("timeout at {time}: {agent} waiting on {waiting_on}")
            } else {
                format!(
                    "timeout at {time}: {agent} waiting on {waiting_on}; cycle [{}]",
                    cycle.join(" -> ")
                )
            },
        },
        SimError::AgentPanic { agent, message } => ChaosOutcome::AttributedDiagnostic {
            detail: format!("{agent}: {message}"),
        },
    }
}

// ---------------------------------------------------------------------------
// FaultPlan <-> JSON (hand-rolled; the workspace has no serde)
// ---------------------------------------------------------------------------

fn f64_json(v: f64) -> String {
    // Rust's shortest round-trip formatting; ensure a decimal point so the
    // value reads back as a float field unambiguously.
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E', 'n', 'i']) {
        s
    } else {
        format!("{s}.0")
    }
}

/// Serialize a plan as pretty-printed JSON. Virtual times are u64
/// nanoseconds; floats use Rust's shortest round-trip representation, so
/// `plan_from_json(&plan_to_json(p)) == p` holds bitwise.
pub fn plan_to_json(plan: &FaultPlan) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"seed\": {},\n", plan.seed));
    s.push_str("  \"links\": [");
    for (i, l) in plan.links.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"a\": {}, \"b\": {}, \"from\": {}, \"until\": {}, \
             \"latency_mult\": {}, \"bandwidth_mult\": {}}}",
            l.a,
            l.b,
            l.from.as_nanos(),
            l.until.as_nanos(),
            f64_json(l.latency_mult),
            f64_json(l.bandwidth_mult)
        ));
    }
    s.push_str(if plan.links.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"drops\": [");
    for (i, d) in plan.drops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"from\": {}, \"to\": {}, \"first_attempt\": {}, \"count\": {}}}",
            d.from, d.to, d.first_attempt, d.count
        ));
    }
    s.push_str(if plan.drops.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"crashes\": [");
    for (i, c) in plan.crashes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"node\": {}, \"at_iteration\": {}}}",
            c.node, c.at_iteration
        ));
    }
    s.push_str(if plan.crashes.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"stragglers\": [");
    for (i, f) in plan.stragglers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"node\": {}, \"from\": {}, \"until\": {}, \"compute_mult\": {}}}",
            f.node,
            f.from.as_nanos(),
            f.until.as_nanos(),
            f64_json(f.compute_mult)
        ));
    }
    s.push_str(if plan.stragglers.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push('}');
    s
}

/// A parsed JSON value (minimal: just what fault plans need; booleans and
/// null are accepted for completeness even though no plan field uses them).
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Jv {
    Obj(Vec<(String, Jv)>),
    Arr(Vec<Jv>),
    /// Numbers stay as source text so u64 seeds survive without f64 loss.
    Num(String),
    Str(String),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Jv::Str(self.string()?)),
            Some(b't') => self.literal("true", Jv::Bool(true)),
            Some(b'f') => self.literal("false", Jv::Bool(false)),
            Some(b'n') => self.literal("null", Jv::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Jv) -> Result<Jv, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected a number"));
        }
        Ok(Jv::Num(
            std::str::from_utf8(&self.b[start..self.i])
                .unwrap()
                .to_string(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.b[self.i..self.i + ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Jv, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Jv::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Jv::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Jv, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Jv::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Jv::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document into a [`Jv`] tree (crate-internal helper shared
/// with the reproducer format in the bench crate via [`parse_json`]).
fn parse_document(s: &str) -> Result<Jv, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl Jv {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Jv> {
        match self {
            Jv::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Jv::Num(s) => s.parse().map_err(|_| format!("{what}: not a u64: {s}")),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Jv::Num(s) => s.parse().map_err(|_| format!("{what}: not a float: {s}")),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, String> {
        Ok(self.as_u64(what)? as usize)
    }

    fn as_arr(&self, what: &str) -> Result<&[Jv], String> {
        match self {
            Jv::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }
}

fn req<'a>(obj: &'a Jv, key: &str, what: &str) -> Result<&'a Jv, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing \"{key}\""))
}

/// Parse a JSON document and return its top-level **string** field `key`
/// (`Ok(None)` when the field is absent). The bench crate's reproducer
/// format wraps a fault plan with `workload`/`topology` tags in the *same*
/// object — [`plan_from_json`] ignores the extra fields, and this helper
/// reads them back without exposing the parser.
pub fn string_field(s: &str, key: &str) -> Result<Option<String>, String> {
    let doc = parse_document(s)?;
    match doc.get(key) {
        None => Ok(None),
        Some(Jv::Str(v)) => Ok(Some(v.clone())),
        Some(_) => Err(format!("\"{key}\": expected a string")),
    }
}

/// Parse a plan from the JSON produced by [`plan_to_json`] (field order is
/// irrelevant; the empty arrays may be omitted entirely; unknown fields are
/// ignored, which the reproducer wrapper format relies on).
pub fn plan_from_json(s: &str) -> Result<FaultPlan, String> {
    let doc = parse_document(s)?;
    plan_from_jv(&doc)
}

fn plan_from_jv(doc: &Jv) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    plan.seed = match doc.get("seed") {
        Some(v) => v.as_u64("seed")?,
        None => 0,
    };
    if let Some(v) = doc.get("links") {
        for (i, l) in v.as_arr("links")?.iter().enumerate() {
            let what = format!("links[{i}]");
            plan.links.push(LinkFault {
                a: req(l, "a", &what)?.as_usize(&what)?,
                b: req(l, "b", &what)?.as_usize(&what)?,
                from: SimTime(req(l, "from", &what)?.as_u64(&what)?),
                until: SimTime(req(l, "until", &what)?.as_u64(&what)?),
                latency_mult: req(l, "latency_mult", &what)?.as_f64(&what)?,
                bandwidth_mult: req(l, "bandwidth_mult", &what)?.as_f64(&what)?,
            });
        }
    }
    if let Some(v) = doc.get("drops") {
        for (i, d) in v.as_arr("drops")?.iter().enumerate() {
            let what = format!("drops[{i}]");
            plan.drops.push(DropFault {
                from: req(d, "from", &what)?.as_usize(&what)?,
                to: req(d, "to", &what)?.as_usize(&what)?,
                first_attempt: req(d, "first_attempt", &what)?.as_u64(&what)?,
                count: req(d, "count", &what)?.as_u64(&what)?,
            });
        }
    }
    if let Some(v) = doc.get("crashes") {
        for (i, c) in v.as_arr("crashes")?.iter().enumerate() {
            let what = format!("crashes[{i}]");
            plan.crashes.push(CrashFault {
                node: req(c, "node", &what)?.as_usize(&what)?,
                at_iteration: req(c, "at_iteration", &what)?.as_u64(&what)?,
            });
        }
    }
    if let Some(v) = doc.get("stragglers") {
        for (i, f) in v.as_arr("stragglers")?.iter().enumerate() {
            let what = format!("stragglers[{i}]");
            plan.stragglers.push(StragglerFault {
                node: req(f, "node", &what)?.as_usize(&what)?,
                from: SimTime(req(f, "from", &what)?.as_u64(&what)?),
                until: SimTime(req(f, "until", &what)?.as_u64(&what)?),
                compute_mult: req(f, "compute_mult", &what)?.as_f64(&what)?,
            });
        }
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Shrinking: ddmin over fault atoms, then injection-window tightening
// ---------------------------------------------------------------------------

/// One schedulable fault, plan-kind-erased — the unit the delta-debugging
/// minimizer removes and re-adds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAtom {
    /// A link degradation/kill window.
    Link(LinkFault),
    /// A dropped-delivery window.
    Drop(DropFault),
    /// A crash point.
    Crash(CrashFault),
    /// A straggler window.
    Straggler(StragglerFault),
}

/// Flatten a plan into its fault atoms (stable order: links, drops,
/// crashes, stragglers).
pub fn atoms(plan: &FaultPlan) -> Vec<FaultAtom> {
    let mut v = Vec::new();
    v.extend(plan.links.iter().cloned().map(FaultAtom::Link));
    v.extend(plan.drops.iter().cloned().map(FaultAtom::Drop));
    v.extend(plan.crashes.iter().cloned().map(FaultAtom::Crash));
    v.extend(plan.stragglers.iter().cloned().map(FaultAtom::Straggler));
    v
}

/// Rebuild a plan from atoms, preserving `seed` for provenance.
pub fn rebuild(seed: u64, atoms: &[FaultAtom]) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..Default::default()
    };
    for a in atoms {
        match a {
            FaultAtom::Link(f) => plan.links.push(f.clone()),
            FaultAtom::Drop(f) => plan.drops.push(f.clone()),
            FaultAtom::Crash(f) => plan.crashes.push(f.clone()),
            FaultAtom::Straggler(f) => plan.stragglers.push(f.clone()),
        }
    }
    plan
}

/// Shrink a failing plan to a minimal reproducer.
///
/// `still_fails(candidate)` must return `true` when the candidate plan
/// reproduces the original failure (same classification). The algorithm is
/// the classic **ddmin**: partition the fault atoms into `n` chunks, try
/// each chunk and each complement, recurse on whichever still fails with
/// finer granularity, until the list is 1-minimal (removing any single
/// fault makes the failure disappear). A second pass then **tightens
/// injection times**: windowed faults (links, stragglers) get their windows
/// repeatedly halved, drop bursts get their count halved, while the failure
/// persists. Fully deterministic given a deterministic oracle; the oracle
/// is invoked O(k² + k·log(window)) times for k atoms.
///
/// If the input plan does not fail under the oracle it is returned as-is.
pub fn shrink(plan: &FaultPlan, still_fails: &mut dyn FnMut(&FaultPlan) -> bool) -> FaultPlan {
    if !still_fails(plan) {
        return plan.clone();
    }
    let seed = plan.seed;
    let mut current = atoms(plan);

    // Phase 1: ddmin to a 1-minimal subset.
    let mut n = 2usize;
    while current.len() >= 2 {
        let len = current.len();
        let chunk = len.div_ceil(n.min(len));
        let mut reduced = false;
        // Try each chunk alone.
        for start in (0..len).step_by(chunk) {
            let subset: Vec<FaultAtom> = current[start..(start + chunk).min(len)].to_vec();
            if subset.len() < len && still_fails(&rebuild(seed, &subset)) {
                current = subset;
                n = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        // Try each complement.
        for start in (0..len).step_by(chunk) {
            let mut complement = current.clone();
            complement.drain(start..(start + chunk).min(len));
            if !complement.is_empty()
                && complement.len() < len
                && still_fails(&rebuild(seed, &complement))
            {
                current = complement;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        if n >= len {
            break; // 1-minimal.
        }
        n = (n * 2).min(len);
    }

    // Phase 2: tighten injection windows atom by atom.
    for i in 0..current.len() {
        loop {
            let tightened = match &current[i] {
                FaultAtom::Link(f) if !f.is_kill() => {
                    let len = f.until.as_nanos().saturating_sub(f.from.as_nanos());
                    if len <= 1 {
                        None
                    } else {
                        let mut t = f.clone();
                        t.until = SimTime(f.from.as_nanos() + len / 2);
                        Some(FaultAtom::Link(t))
                    }
                }
                FaultAtom::Straggler(f) => {
                    let len = f.until.as_nanos().saturating_sub(f.from.as_nanos());
                    if len <= 1 {
                        None
                    } else {
                        let mut t = f.clone();
                        t.until = SimTime(f.from.as_nanos() + len / 2);
                        Some(FaultAtom::Straggler(t))
                    }
                }
                FaultAtom::Drop(f) if f.count > 1 => {
                    let mut t = f.clone();
                    t.count = f.count / 2;
                    Some(FaultAtom::Drop(t))
                }
                _ => None,
            };
            let Some(candidate_atom) = tightened else {
                break;
            };
            let mut candidate = current.clone();
            candidate[i] = candidate_atom;
            if still_fails(&rebuild(seed, &candidate)) {
                current = candidate;
            } else {
                break;
            }
        }
    }

    rebuild(seed, &current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    fn sample_plan() -> FaultPlan {
        FaultPlan::from_seed(7, 4, SimTime::ZERO + us(400.0), 10)
    }

    #[test]
    fn json_round_trip_is_bitwise() {
        let plan = sample_plan()
            .with_link(LinkFault::kill(0, 3, SimTime(12345)))
            .with_link(LinkFault {
                a: 1,
                b: 2,
                from: SimTime(0),
                until: SimTime(999_999),
                latency_mult: 1.5000000000000002,
                bandwidth_mult: 0.1,
            });
        let json = plan_to_json(&plan);
        let back = plan_from_json(&json).expect("parse");
        assert_eq!(plan, back, "round-trip must be exact:\n{json}");
        // And a second trip is byte-stable.
        assert_eq!(json, plan_to_json(&back));
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::new();
        let back = plan_from_json(&plan_to_json(&plan)).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn missing_sections_default_to_empty() {
        let plan = plan_from_json("{\"seed\": 9}").unwrap();
        assert_eq!(plan.seed, 9);
        assert!(plan.is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(plan_from_json("{").is_err());
        assert!(plan_from_json("{\"links\": [{\"a\": 0}]}").is_err());
        assert!(plan_from_json("{} trailing").is_err());
        assert!(plan_from_json("{\"seed\": \"x\"}").is_err());
    }

    #[test]
    fn big_seed_survives_round_trip() {
        let plan = FaultPlan {
            seed: u64::MAX - 1,
            ..Default::default()
        };
        let back = plan_from_json(&plan_to_json(&plan)).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn ddmin_finds_single_culprit() {
        // Failure iff the plan contains the crash on node 2.
        let plan = sample_plan().with_crash(CrashFault {
            node: 2,
            at_iteration: 777,
        });
        let mut calls = 0;
        let shrunk = shrink(&plan, &mut |p| {
            calls += 1;
            p.crashes.iter().any(|c| c.at_iteration == 777)
        });
        assert_eq!(atoms(&shrunk).len(), 1);
        assert_eq!(
            shrunk.crashes,
            vec![CrashFault {
                node: 2,
                at_iteration: 777
            }]
        );
        assert!(calls > 0);
    }

    #[test]
    fn ddmin_keeps_conjunction_of_two_faults() {
        // Failure requires BOTH the drop and the crash.
        let plan = sample_plan()
            .with_drop(DropFault {
                from: 3,
                to: 0,
                first_attempt: 42,
                count: 1,
            })
            .with_crash(CrashFault {
                node: 1,
                at_iteration: 555,
            });
        let shrunk = shrink(&plan, &mut |p| {
            p.drops.iter().any(|d| d.first_attempt == 42)
                && p.crashes.iter().any(|c| c.at_iteration == 555)
        });
        assert_eq!(atoms(&shrunk).len(), 2);
        assert_eq!(shrunk.drops.len(), 1);
        assert_eq!(shrunk.crashes.len(), 1);
    }

    #[test]
    fn tightening_halves_windows_and_counts() {
        let plan = FaultPlan::new()
            .with_link(LinkFault {
                a: 0,
                b: 1,
                from: SimTime(1000),
                until: SimTime(1000 + (1 << 20)),
                latency_mult: 8.0,
                bandwidth_mult: 0.5,
            })
            .with_drop(DropFault {
                from: 0,
                to: 1,
                first_attempt: 1,
                count: 64,
            });
        // Failure persists while the link window covers [1000, 1200) and at
        // least 3 drops remain.
        let shrunk = shrink(&plan, &mut |p| {
            p.links
                .iter()
                .any(|l| l.from <= SimTime(1000) && l.until >= SimTime(1200))
                && p.drops.iter().map(|d| d.count).sum::<u64>() >= 3
        });
        let l = &shrunk.links[0];
        assert!(
            l.until.as_nanos() - l.from.as_nanos() < 1024,
            "window should be tightened, got {} ns",
            l.until.as_nanos() - l.from.as_nanos()
        );
        assert!(l.until >= SimTime(1200));
        assert_eq!(
            shrunk.drops[0].count, 4,
            "64 -> 32 -> 16 -> 8 -> 4 (2 fails)"
        );
    }

    #[test]
    fn non_failing_plan_is_returned_unchanged() {
        let plan = sample_plan();
        let shrunk = shrink(&plan, &mut |_| false);
        assert_eq!(plan, shrunk);
    }

    #[test]
    fn classify_attributes_engine_errors() {
        let deadlock = SimError::Deadlock {
            time: SimTime(5),
            blocked: vec!["a @flag".into()],
            cycle: vec!["a".into(), "b".into()],
        };
        assert_eq!(classify_error(&deadlock).label(), "attributed-timeout");
        let panic = SimError::AgentPanic {
            agent: "pe1".into(),
            message: "PartitionedNetwork: 0->2".into(),
        };
        match classify_error(&panic) {
            ChaosOutcome::AttributedDiagnostic { detail } => {
                assert!(detail.contains("PartitionedNetwork"))
            }
            other => panic!("wrong class: {other:?}"),
        }
        assert!(!classify_error(&panic).is_violation());
        assert!(ChaosOutcome::SilentDivergence {
            detail: String::new()
        }
        .is_violation());
    }
}
