//! Virtual time for the discrete-event engine.
//!
//! Time is kept as an integer number of **nanoseconds** so that event ordering
//! is exact and runs are bit-reproducible. Costs in the GPU model are small
//! multiples of 0.05 µs, so nanosecond resolution loses nothing.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (lossy).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since simulation start (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// Zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDur {
        SimDur(ns)
    }

    /// Construct from (possibly fractional) microseconds, rounding to ns.
    #[inline]
    pub fn from_us(us: f64) -> SimDur {
        debug_assert!(us >= 0.0, "negative duration");
        SimDur((us * 1e3).round() as u64)
    }

    /// Construct from (possibly fractional) milliseconds, rounding to ns.
    #[inline]
    pub fn from_ms(ms: f64) -> SimDur {
        debug_assert!(ms >= 0.0, "negative duration");
        SimDur((ms * 1e6).round() as u64)
    }

    /// Construct from (possibly fractional) seconds, rounding to ns.
    #[inline]
    pub fn from_secs(s: f64) -> SimDur {
        debug_assert!(s >= 0.0, "negative duration");
        SimDur((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (lossy).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds in this duration (lossy).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

/// Shorthand constructor: duration from microseconds.
#[inline]
pub fn us(v: f64) -> SimDur {
    SimDur::from_us(v)
}

/// Shorthand constructor: duration from nanoseconds.
#[inline]
pub const fn ns(v: u64) -> SimDur {
    SimDur::from_nanos(v)
}

/// Shorthand constructor: duration from milliseconds.
#[inline]
pub fn ms(v: f64) -> SimDur {
    SimDur::from_ms(v)
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Mul<f64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: f64) -> SimDur {
        debug_assert!(rhs >= 0.0);
        SimDur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        SimDur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDur(self.0), f)
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(us(1.5).as_nanos(), 1500);
        assert_eq!(ms(2.0).as_nanos(), 2_000_000);
        assert_eq!(SimDur::from_secs(0.25).as_nanos(), 250_000_000);
        assert_eq!(ns(42).as_nanos(), 42);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + us(3.0) + ns(10);
        assert_eq!(t.as_nanos(), 3010);
        assert_eq!(t.since(SimTime(10)).as_nanos(), 3000);
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), SimDur::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        assert_eq!((us(2.0) + us(3.0)).as_micros_f64(), 5.0);
        assert_eq!((us(10.0) - us(4.0)).as_nanos(), 6000);
        assert_eq!((us(3.0) * 4).as_nanos(), 12_000);
        assert_eq!((us(3.0) * 0.5).as_nanos(), 1500);
        assert_eq!((us(9.0) / 3).as_nanos(), 3000);
        let total: SimDur = [us(1.0), us(2.0), us(3.0)].into_iter().sum();
        assert_eq!(total.as_nanos(), 6000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ns(17)), "17ns");
        assert_eq!(format!("{}", us(1.5)), "1.500us");
        assert_eq!(format!("{}", ms(2.25)), "2.250ms");
        assert_eq!(format!("{}", SimDur::from_secs(1.5)), "1.500s");
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_when_reversed() {
        let _ = SimTime(5).since(SimTime(10));
    }
}
