//! The agent-side API: what simulated code is written against.

use crate::engine::{spawn_agent, Request, Shared, ShutdownUnwind, Turn};
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Category, TraceSpan};
use parking_lot::Condvar;
use std::panic::resume_unwind;
use std::sync::Arc;

/// Identifies an agent within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Handle through which an agent interacts with virtual time and its peers.
///
/// Methods that *block* (`advance`, `wait_flag`, `barrier`, `yield_now`) hand
/// the execution token back to the scheduler; everything else is immediate
/// and charges no virtual time.
pub struct AgentCtx {
    shared: Arc<Shared>,
    id: AgentId,
    cv: Arc<Condvar>,
}

impl AgentCtx {
    pub(crate) fn new(shared: Arc<Shared>, id: AgentId, cv: Arc<Condvar>) -> Self {
        AgentCtx { shared, id, cv }
    }

    /// This agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// This agent's name.
    pub fn name(&self) -> String {
        self.shared.central.lock().agent_name(self.id).to_string()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.central.lock().clock
    }

    /// Hand the token to the scheduler and park until resumed.
    fn handoff(&mut self, req: Request) {
        let mut g = self.shared.central.lock();
        g.request = Some((self.id, req));
        g.turn = Turn::Scheduler;
        self.shared.sched_cv.notify_one();
        loop {
            if g.shutdown {
                drop(g);
                resume_unwind(Box::new(ShutdownUnwind));
            }
            if matches!(g.turn, Turn::Agent(a) if a == self.id) {
                return;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Charge `dur` of virtual time to this agent (blocking).
    pub fn advance(&mut self, dur: SimDur) {
        if dur.is_zero() {
            return;
        }
        self.handoff(Request::Advance(dur));
    }

    /// Charge `dur` of virtual time *and* record a trace span covering it.
    ///
    /// This is the workhorse for modeled activities: compute phases, DMA
    /// initiation overheads, API call costs.
    pub fn busy(&mut self, category: Category, label: impl Into<String>, dur: SimDur) {
        if dur.is_zero() {
            return;
        }
        let start = self.now();
        self.advance(dur);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Reschedule after all other currently-runnable same-time work.
    pub fn yield_now(&mut self) {
        self.handoff(Request::Yield);
    }

    /// Block until `flag <cmp> value` holds (no trace span).
    pub fn wait_flag(&mut self, flag: Flag, cmp: Cmp, value: u64) {
        self.handoff(Request::WaitFlag { flag, cmp, value });
    }

    /// Block until `flag <cmp> value` holds, recording the wait as a span.
    pub fn wait_flag_traced(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        category: Category,
        label: impl Into<String>,
    ) {
        let start = self.now();
        self.wait_flag(flag, cmp, value);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Arrive at an N-party barrier and block until all parties arrive.
    pub fn barrier(&mut self, barrier: Barrier) {
        self.handoff(Request::Barrier(barrier));
    }

    /// Barrier arrival recorded as a trace span (category usually `Sync`).
    pub fn barrier_traced(
        &mut self,
        barrier: Barrier,
        category: Category,
        label: impl Into<String>,
    ) {
        let start = self.now();
        self.barrier(barrier);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Apply a signal to a flag *now* (non-blocking, zero virtual time).
    pub fn signal(&self, flag: Flag, op: SignalOp, value: u64) {
        let mut g = self.shared.central.lock();
        let at = g.clock;
        g.apply_signal(flag, op, value, at);
    }

    /// Schedule a signal to apply after `delay` (e.g. a DMA completion).
    pub fn schedule_signal(&self, flag: Flag, op: SignalOp, value: u64, delay: SimDur) {
        let mut g = self.shared.central.lock();
        let t = g.clock + delay;
        g.push_signal(t, flag, op, value);
    }

    /// Schedule a side-effect closure to run after `delay`.
    ///
    /// Used to materialize asynchronous effects at their completion time —
    /// e.g. a DMA engine writing transferred bytes into the destination
    /// buffer. The closure runs on the scheduler thread and must not call
    /// back into the engine; pair it with [`AgentCtx::schedule_signal`] (the
    /// call is executed before a signal scheduled afterwards at equal time).
    pub fn schedule_call(&self, delay: SimDur, f: impl FnOnce() + Send + 'static) {
        let mut g = self.shared.central.lock();
        let t = g.clock + delay;
        g.push_call(t, Box::new(f));
    }

    /// Read a flag's current value (non-blocking).
    pub fn flag_value(&self, flag: Flag) -> u64 {
        self.shared.central.lock().flag_value(flag)
    }

    /// Allocate a new flag from agent context.
    pub fn new_flag(&self, init: u64) -> Flag {
        self.shared.central.lock().new_flag(init)
    }

    /// Allocate a new barrier from agent context.
    pub fn new_barrier(&self, parties: usize) -> Barrier {
        self.shared.central.lock().new_barrier(parties)
    }

    /// Spawn a child agent, runnable at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx) + Send + 'static,
    {
        spawn_agent(&self.shared, name.into(), f)
    }

    /// Record an arbitrary span (for activities whose time was charged
    /// elsewhere, e.g. a DMA that completed via `schedule_signal`).
    pub fn record(
        &self,
        category: Category,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        let mut g = self.shared.central.lock();
        let agent_name = g.agent_name(self.id).to_string();
        g.record_span(TraceSpan {
            agent: self.id,
            agent_name,
            start,
            end,
            category,
            label: label.into(),
        });
    }
}
