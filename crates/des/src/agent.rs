//! The agent-side API: what simulated code is written against.

use crate::engine::SimError;
use crate::engine::{spawn_agent, AbortSim, BlockedInfo, Request, Shared, ShutdownUnwind, Turn};
use crate::intern::{Label, Sym};
use crate::lock::Condvar;
use crate::sync::{Barrier, Cmp, Flag, SignalOp};
use crate::time::{SimDur, SimTime};
use crate::trace::{Category, TraceSpan};
use std::panic::resume_unwind;
use std::sync::Arc;

/// Identifies an agent within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Returned by deadline-bounded waits when the deadline expired first.
///
/// The wait is cancelled cleanly (the agent is removed from the flag /
/// barrier waiter list) and virtual time equals exactly the deadline when
/// the agent resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimedOut {
    /// The deadline that expired.
    pub deadline: SimTime,
}

/// Handle through which an agent interacts with virtual time and its peers.
///
/// Methods that *block* (`advance`, `wait_flag`, `barrier`, `yield_now`) hand
/// the execution token back to the scheduler; everything else is immediate
/// and charges no virtual time.
///
/// Label-taking methods accept anything convertible to
/// [`Label`](crate::Label): string literals and `format!` results work
/// unchanged, while hot loops should pre-intern once via
/// [`AgentCtx::intern`] and pass the [`Sym`] to skip per-event hashing.
pub struct AgentCtx {
    shared: Arc<Shared>,
    id: AgentId,
    cv: Arc<Condvar>,
}

impl AgentCtx {
    pub(crate) fn new(shared: Arc<Shared>, id: AgentId, cv: Arc<Condvar>) -> Self {
        AgentCtx { shared, id, cv }
    }

    /// This agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// This agent's name.
    pub fn name(&self) -> String {
        self.shared.central.lock().agent_name(self.id).to_string()
    }

    /// Intern a string in the engine's symbol pool (no engine lock taken).
    ///
    /// Pre-intern per-iteration labels once, outside the loop, and pass the
    /// returned [`Sym`] to [`AgentCtx::busy`] / [`AgentCtx::record`].
    pub fn intern(&self, s: &str) -> Sym {
        self.shared.pool.intern(s)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.central.lock().clock
    }

    /// Hand the token to the scheduler and park until resumed.
    fn handoff(&mut self, req: Request) {
        let mut g = self.shared.central.lock();
        g.request = Some((self.id, req));
        g.turn = Turn::Scheduler;
        self.shared.sched_cv.notify_one();
        loop {
            if g.shutdown {
                drop(g);
                resume_unwind(Box::new(ShutdownUnwind));
            }
            if matches!(g.turn, Turn::Agent(a) if a == self.id) {
                return;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Charge `dur` of virtual time to this agent (blocking).
    pub fn advance(&mut self, dur: SimDur) {
        if dur.is_zero() {
            return;
        }
        self.handoff(Request::Advance(dur));
    }

    /// Charge `dur` of virtual time *and* record a trace span covering it.
    ///
    /// This is the workhorse for modeled activities: compute phases, DMA
    /// initiation overheads, API call costs.
    pub fn busy<'a>(&mut self, category: Category, label: impl Into<Label<'a>>, dur: SimDur) {
        if dur.is_zero() {
            return;
        }
        let start = self.now();
        self.advance(dur);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Reschedule after all other currently-runnable same-time work.
    pub fn yield_now(&mut self) {
        self.handoff(Request::Yield);
    }

    /// Block until `flag <cmp> value` holds (no trace span).
    pub fn wait_flag(&mut self, flag: Flag, cmp: Cmp, value: u64) {
        self.handoff(Request::WaitFlag {
            flag,
            cmp,
            value,
            deadline: None,
            expected_from: None,
        });
    }

    /// Like [`AgentCtx::wait_flag`], but annotates the wait with the identity
    /// label of the peer expected to deliver the signal (a wait-for-graph
    /// edge, see [`AgentCtx::set_identity`]). Used by deadlock / timeout
    /// diagnosis to report cycles instead of a flat blocked list.
    pub fn wait_flag_from<'a>(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        from: impl Into<Label<'a>>,
    ) {
        let from = from.into().intern(&self.shared.pool);
        self.handoff(Request::WaitFlag {
            flag,
            cmp,
            value,
            deadline: None,
            expected_from: Some(from),
        });
    }

    /// Block until `flag <cmp> value` holds, or until the virtual-time
    /// `deadline` expires — whichever comes first.
    ///
    /// On timeout the agent resumes at exactly `deadline` (never later) with
    /// `Err(WaitTimedOut)`, and is removed from the flag's waiter list. An
    /// unexpired deadline never perturbs virtual time.
    pub fn wait_flag_until(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        deadline: SimTime,
    ) -> Result<(), WaitTimedOut> {
        self.wait_flag_deadline(flag, cmp, value, deadline, None)
    }

    /// The general deadline wait: both a deadline and an optional declared
    /// sender identity (pre-interned — see [`AgentCtx::intern`]).
    pub fn wait_flag_deadline(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        deadline: SimTime,
        expected_from: Option<Sym>,
    ) -> Result<(), WaitTimedOut> {
        self.handoff(Request::WaitFlag {
            flag,
            cmp,
            value,
            deadline: Some(deadline),
            expected_from,
        });
        if self.shared.central.lock().take_timed_out(self.id) {
            Err(WaitTimedOut { deadline })
        } else {
            Ok(())
        }
    }

    /// Block until `flag <cmp> value` holds, recording the wait as a span.
    pub fn wait_flag_traced<'a>(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        category: Category,
        label: impl Into<Label<'a>>,
    ) {
        let start = self.now();
        self.wait_flag(flag, cmp, value);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Arrive at an N-party barrier and block until all parties arrive.
    pub fn barrier(&mut self, barrier: Barrier) {
        self.handoff(Request::Barrier {
            barrier,
            deadline: None,
        });
    }

    /// Arrive at a barrier, but give up (withdraw the arrival) if the
    /// barrier has not released by `deadline`. On timeout the agent is
    /// removed from the barrier's arrival list, so a later re-arrival starts
    /// fresh — engine barriers keep no round memory.
    pub fn barrier_until(
        &mut self,
        barrier: Barrier,
        deadline: SimTime,
    ) -> Result<(), WaitTimedOut> {
        self.handoff(Request::Barrier {
            barrier,
            deadline: Some(deadline),
        });
        if self.shared.central.lock().take_timed_out(self.id) {
            Err(WaitTimedOut { deadline })
        } else {
            Ok(())
        }
    }

    /// Declare this agent's logical identity (e.g. `"pe3"`), the node label
    /// used in wait-for-graph diagnostics.
    pub fn set_identity<'a>(&self, identity: impl Into<Label<'a>>) {
        let identity = identity.into().intern(&self.shared.pool);
        self.shared.central.lock().set_identity(self.id, identity);
    }

    /// Snapshot of every live blocked agent (for watchdog agents).
    pub fn blocked_agents(&self) -> Vec<BlockedInfo> {
        self.shared.central.lock().blocked_snapshot()
    }

    /// Current wait-for cycle among blocked agents, if any (agent names).
    pub fn wait_cycle(&self) -> Vec<String> {
        self.shared.central.lock().wait_cycle()
    }

    /// Build an attributed [`SimError::Timeout`] from this agent's view,
    /// capturing the current wait-for cycle. Pair with [`AgentCtx::abort`].
    pub fn timeout_error(&self, waiting_on: impl Into<String>, deadline: SimTime) -> SimError {
        let g = self.shared.central.lock();
        SimError::Timeout {
            time: g.clock,
            agent: g.agent_name(self.id).to_string(),
            waiting_on: waiting_on.into(),
            deadline,
            cycle: g.wait_cycle(),
        }
    }

    /// Abort the whole simulation with a structured error.
    ///
    /// The error surfaces as the `Err` of [`Engine::run`](crate::Engine::run)
    /// (not as an `AgentPanic`); every other agent is unwound and joined.
    /// This is how watchdogs convert silent hangs into attributed diagnoses.
    pub fn abort(&self, err: SimError) -> ! {
        resume_unwind(Box::new(AbortSim(err)))
    }

    /// Barrier arrival recorded as a trace span (category usually `Sync`).
    pub fn barrier_traced<'a>(
        &mut self,
        barrier: Barrier,
        category: Category,
        label: impl Into<Label<'a>>,
    ) {
        let start = self.now();
        self.barrier(barrier);
        let end = self.now();
        self.record(category, label, start, end);
    }

    /// Apply a signal to a flag *now* (non-blocking, zero virtual time).
    pub fn signal(&self, flag: Flag, op: SignalOp, value: u64) {
        let mut g = self.shared.central.lock();
        let at = g.clock;
        let stamp =
            g.hb.clone()
                .map(|hb| hb.on_schedule_signal(self.id, flag, at));
        g.apply_signal(flag, op, value, at, stamp);
    }

    /// Schedule a signal to apply after `delay` (e.g. a DMA completion).
    ///
    /// When happens-before tracking is enabled the delivery carries this
    /// agent's clock at issue time: waiters inherit order from the issuer.
    pub fn schedule_signal(&self, flag: Flag, op: SignalOp, value: u64, delay: SimDur) {
        let mut g = self.shared.central.lock();
        let t = g.clock + delay;
        let at = g.clock;
        let stamp =
            g.hb.clone()
                .map(|hb| hb.on_schedule_signal(self.id, flag, at));
        g.push_signal(t, flag, op, value, stamp);
    }

    /// Schedule a signal whose delivery carries an explicit happens-before
    /// stamp — the clock of an asynchronous effect obtained from
    /// [`HbTracker::async_begin`](crate::hb::HbTracker::async_begin).
    ///
    /// Used by the NVSHMEM-style transports: a put-with-signal's completion
    /// signal must carry the *put's* clock (issue clock plus the effect's
    /// own component), so that consumers who synchronize through the signal
    /// are ordered after the delivered data while the issuer itself is not.
    pub fn schedule_signal_with_stamp(
        &self,
        flag: Flag,
        op: SignalOp,
        value: u64,
        delay: SimDur,
        stamp: crate::hb::AsyncClock,
    ) {
        let mut g = self.shared.central.lock();
        let t = g.clock + delay;
        g.push_signal(t, flag, op, value, Some(stamp));
    }

    /// Schedule a side-effect closure to run after `delay`.
    ///
    /// Used to materialize asynchronous effects at their completion time —
    /// e.g. a DMA engine writing transferred bytes into the destination
    /// buffer. The closure runs on the scheduler thread and must not call
    /// back into the engine; pair it with [`AgentCtx::schedule_signal`] (the
    /// call is executed before a signal scheduled afterwards at equal time).
    pub fn schedule_call(&self, delay: SimDur, f: impl FnOnce() + Send + 'static) {
        let mut g = self.shared.central.lock();
        let t = g.clock + delay;
        g.push_call(t, Box::new(f));
    }

    /// Read a flag's current value (non-blocking).
    pub fn flag_value(&self, flag: Flag) -> u64 {
        self.shared.central.lock().flag_value(flag)
    }

    /// Allocate a new flag from agent context.
    pub fn new_flag(&self, init: u64) -> Flag {
        self.shared.central.lock().new_flag(init)
    }

    /// Allocate a new barrier from agent context.
    pub fn new_barrier(&self, parties: usize) -> Barrier {
        self.shared.central.lock().new_barrier(parties)
    }

    /// Spawn a child agent, runnable at the current virtual time.
    pub fn spawn<'a, F>(&self, name: impl Into<Label<'a>>, f: F) -> AgentId
    where
        F: FnOnce(&mut AgentCtx) + Send + 'static,
    {
        let name = name.into().intern(&self.shared.pool);
        spawn_agent(&self.shared, name, Some(self.id), f)
    }

    /// The engine's happens-before tracker, when enabled.
    pub fn hb(&self) -> Option<std::sync::Arc<crate::hb::HbTracker>> {
        self.shared.central.lock().hb.clone()
    }

    /// Record an arbitrary span (for activities whose time was charged
    /// elsewhere, e.g. a DMA that completed via `schedule_signal`).
    ///
    /// Allocation-free when `label` is a pre-interned [`Sym`] or an
    /// already-known string: the span stores 4-byte keys, not text.
    pub fn record<'a>(
        &self,
        category: Category,
        label: impl Into<Label<'a>>,
        start: SimTime,
        end: SimTime,
    ) {
        // Intern before taking the central lock (the pool has its own).
        let label = label.into().intern(&self.shared.pool);
        let mut g = self.shared.central.lock();
        let agent_name = g.agent_name_sym(self.id);
        g.record_span(TraceSpan {
            agent: self.id,
            agent_name,
            start,
            end,
            category,
            label,
        });
    }
}
