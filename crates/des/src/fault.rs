//! Deterministic fault schedules for robustness experiments.
//!
//! A [`FaultPlan`] describes *what goes wrong and when*, entirely in virtual
//! time and attempt counts, so an injected run is exactly reproducible from
//! a `u64` seed: same plan, same event interleaving, same recovery path,
//! bit-identical results. The plan is pure data; the layers above (the
//! NVSHMEM-style communication shims, the persistent-kernel solvers) consult
//! a shared [`FaultState`] at each send / compute step to learn whether the
//! step is degraded, dropped, or crashed.
//!
//! Supported fault classes:
//!
//! * **Link degradation** ([`LinkFault`]) — an interconnect link between two
//!   nodes runs with multiplied latency and divided bandwidth over a
//!   virtual-time window (models a flapping NVLink / congested PCIe switch).
//! * **Dropped deliveries** ([`DropFault`]) — a directed route silently
//!   drops a contiguous window of put-with-signal attempts (models lost
//!   doorbell writes); senders recover via retry with backoff.
//! * **Agent crash** ([`CrashFault`]) — a node loses its device state at a
//!   given iteration and must restore from a checkpoint.
//! * **Stragglers** ([`StragglerFault`]) — a node computes slower by a
//!   multiplier over a window (models thermal throttling).

use crate::lock::Mutex;
use crate::time::SimTime;
use std::collections::HashMap;
use std::sync::Arc;

/// SplitMix64 — tiny deterministic generator used to derive random plans.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next_u64() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// One SplitMix64 step — the shared seed-mixing primitive behind
/// [`FaultPlan::from_seed`], the engine's wake-order jitter, and the
/// deterministic retry-backoff jitter in the communication layers.
pub fn mix64(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

/// Link degradation between an unordered pair of nodes over a time window.
///
/// A `bandwidth_mult <= 0.0` means the pair's direct connection is **dead**
/// (a hard link failure, not a slowdown): from `from` onward the pair can no
/// longer talk directly and the transport must reroute around it — see
/// [`FaultState::pair_dead`]. Dead links are permanent (`until` is ignored)
/// and do not contribute to [`FaultState::link_mult`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// One endpoint of the (unordered) link.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive). Ignored for dead links (`bandwidth_mult <= 0`).
    pub until: SimTime,
    /// Latency is multiplied by this (>= 1.0 degrades).
    pub latency_mult: f64,
    /// Effective bandwidth is multiplied by this (in `0 < m <= 1` degrades);
    /// transfer time scales by `1 / bandwidth_mult`. `<= 0.0` kills the link.
    pub bandwidth_mult: f64,
}

impl LinkFault {
    /// True when this fault kills the pair outright rather than degrading it.
    pub fn is_kill(&self) -> bool {
        self.bandwidth_mult <= 0.0
    }

    /// A permanent hard failure of the direct `{a, b}` connection from
    /// `from` onward.
    pub fn kill(a: usize, b: usize, from: SimTime) -> LinkFault {
        LinkFault {
            a,
            b,
            from,
            until: SimTime(u64::MAX),
            latency_mult: 1.0,
            bandwidth_mult: 0.0,
        }
    }
}

/// Silently dropped put-with-signal deliveries on a directed route.
///
/// Counted per *attempt*: the `count` attempts starting at the
/// `first_attempt`-th send (1-based) from `from` to `to` are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropFault {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// 1-based index of the first dropped attempt on this route.
    pub first_attempt: u64,
    /// How many consecutive attempts are dropped.
    pub count: u64,
}

/// A node crashes (loses device state) at the start of an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFault {
    /// The crashing node.
    pub node: usize,
    /// Iteration number (1-based, solver-defined) at which the crash hits.
    pub at_iteration: u64,
}

/// A node computes slower by `compute_mult` over a time window.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerFault {
    /// The straggling node.
    pub node: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Compute time is multiplied by this (>= 1.0 degrades).
    pub compute_mult: f64,
}

/// A reproducible schedule of faults, identified by its seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Link degradation windows.
    pub links: Vec<LinkFault>,
    /// Dropped-delivery windows.
    pub drops: Vec<DropFault>,
    /// Crash points.
    pub crashes: Vec<CrashFault>,
    /// Straggler windows.
    pub stragglers: Vec<StragglerFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link-degradation window (builder style).
    pub fn with_link(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self
    }

    /// Add a dropped-delivery window (builder style).
    pub fn with_drop(mut self, fault: DropFault) -> Self {
        self.drops.push(fault);
        self
    }

    /// Add a crash point (builder style).
    pub fn with_crash(mut self, fault: CrashFault) -> Self {
        self.crashes.push(fault);
        self
    }

    /// Add a straggler window (builder style).
    pub fn with_straggler(mut self, fault: StragglerFault) -> Self {
        self.stragglers.push(fault);
        self
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.drops.is_empty()
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
    }

    /// Derive a random-but-reproducible plan over `nodes` nodes and a
    /// horizon of roughly `horizon` virtual time / `iterations` solver
    /// iterations. The same `(seed, nodes, horizon, iterations)` always
    /// yields the identical plan.
    pub fn from_seed(seed: u64, nodes: usize, horizon: SimTime, iterations: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan {
            seed,
            ..Default::default()
        };
        if nodes == 0 {
            return plan;
        }
        let span = horizon.as_nanos().max(1);
        // One or two degraded links.
        for _ in 0..rng.range_u64(1, 3) {
            let a = rng.range_u64(0, nodes as u64) as usize;
            let b = (a + 1) % nodes.max(1);
            let from = rng.range_u64(0, span);
            let len = rng.range_u64(1, span.max(2));
            plan.links.push(LinkFault {
                a,
                b,
                from: SimTime(from),
                until: SimTime(from.saturating_add(len)),
                latency_mult: rng.range_f64(2.0, 8.0),
                bandwidth_mult: rng.range_f64(0.2, 0.8),
            });
        }
        // A short burst of dropped deliveries on one directed route.
        if nodes > 1 {
            let from = rng.range_u64(0, nodes as u64) as usize;
            let to = (from + 1) % nodes;
            plan.drops.push(DropFault {
                from,
                to,
                first_attempt: rng.range_u64(1, iterations.max(2)),
                count: rng.range_u64(1, 4),
            });
        }
        // One crash somewhere past the first iteration.
        if iterations > 2 {
            plan.crashes.push(CrashFault {
                node: rng.range_u64(0, nodes as u64) as usize,
                at_iteration: rng.range_u64(2, iterations),
            });
        }
        // One straggler window.
        {
            let from = rng.range_u64(0, span);
            let len = rng.range_u64(1, span.max(2));
            plan.stragglers.push(StragglerFault {
                node: rng.range_u64(0, nodes as u64) as usize,
                from: SimTime(from),
                until: SimTime(from.saturating_add(len)),
                compute_mult: rng.range_f64(1.5, 4.0),
            });
        }
        plan
    }
}

/// Runtime view of a [`FaultPlan`]: the plan plus per-route attempt
/// counters. Shared (`Arc`) between the machine and every communication
/// context so drop windows are counted once per route machine-wide.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// Per directed route `(from, to)`: number of put-with-signal attempts
    /// observed so far.
    attempts: Mutex<HashMap<(usize, usize), u64>>,
}

impl FaultState {
    /// A fault-free state (empty plan). The cheap default for every machine.
    pub fn none() -> Arc<Self> {
        Self::new(FaultPlan::new())
    }

    /// Wrap a plan for runtime consultation.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultState {
            plan,
            attempts: Mutex::new(HashMap::new()),
        })
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// False for the fault-free state: callers can skip all bookkeeping.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
    }

    /// Combined `(latency_mult, inverse_bandwidth_mult)` for the unordered
    /// link `{a, b}` at time `now`. Both are `1.0` on a healthy link; the
    /// second value is the factor to multiply *transfer time* by.
    pub fn link_mult(&self, a: usize, b: usize, now: SimTime) -> (f64, f64) {
        let mut lat = 1.0;
        let mut inv_bw = 1.0;
        for f in &self.plan.links {
            let same = (f.a == a && f.b == b) || (f.a == b && f.b == a);
            // Kills are routing faults, not slowdowns — handled by rerouting.
            if same && !f.is_kill() && now >= f.from && now < f.until {
                lat *= f.latency_mult.max(1.0);
                inv_bw *= 1.0 / f.bandwidth_mult.clamp(1e-6, 1.0);
            }
        }
        (lat, inv_bw)
    }

    /// True when the direct `{a, b}` connection is hard-failed at `now`
    /// (a [`LinkFault`] with `bandwidth_mult <= 0` whose `from` has passed).
    /// Kills are permanent: once active, the pair never heals.
    pub fn pair_dead(&self, a: usize, b: usize, now: SimTime) -> bool {
        self.plan.links.iter().any(|f| {
            let same = (f.a == a && f.b == b) || (f.a == b && f.b == a);
            same && f.is_kill() && now >= f.from
        })
    }

    /// All unordered pairs whose direct connection is dead at `now`, as
    /// sorted `(min, max)` tuples — a deterministic routing-table key.
    pub fn dead_pairs(&self, now: SimTime) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .plan
            .links
            .iter()
            .filter(|f| f.is_kill() && now >= f.from)
            .map(|f| (f.a.min(f.b), f.a.max(f.b)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True when the plan contains any hard link failure (at any time).
    pub fn has_kills(&self) -> bool {
        self.plan.links.iter().any(LinkFault::is_kill)
    }

    /// Record one put-with-signal attempt on the directed route and report
    /// whether this attempt falls inside a drop window. Attempt numbering is
    /// 1-based and deterministic (the simulation is sequential).
    pub fn should_drop(&self, from: usize, to: usize) -> bool {
        if self.plan.drops.is_empty() {
            return false;
        }
        let mut g = self.attempts.lock();
        let n = g.entry((from, to)).or_insert(0);
        *n += 1;
        let attempt = *n;
        self.plan.drops.iter().any(|d| {
            d.from == from
                && d.to == to
                && attempt >= d.first_attempt
                && attempt < d.first_attempt + d.count
        })
    }

    /// The iteration at which `node` is scheduled to crash, if any.
    pub fn crash_iteration(&self, node: usize) -> Option<u64> {
        self.plan
            .crashes
            .iter()
            .find(|c| c.node == node)
            .map(|c| c.at_iteration)
    }

    /// Compute-time multiplier for `node` at time `now` (1.0 when healthy).
    pub fn compute_mult(&self, node: usize, now: SimTime) -> f64 {
        let mut m = 1.0;
        for f in &self.plan.stragglers {
            if f.node == node && now >= f.from && now < f.until {
                m *= f.compute_mult.max(1.0);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    #[test]
    fn same_seed_same_plan() {
        let horizon = SimTime::ZERO + ms(10.0);
        let a = FaultPlan::from_seed(42, 4, horizon, 20);
        let b = FaultPlan::from_seed(42, 4, horizon, 20);
        assert_eq!(a, b);
        let c = FaultPlan::from_seed(43, 4, horizon, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn drop_window_counts_attempts_per_route() {
        let plan = FaultPlan::new().with_drop(DropFault {
            from: 0,
            to: 1,
            first_attempt: 2,
            count: 2,
        });
        let st = FaultState::new(plan);
        // Route 0 -> 1: attempts 2 and 3 drop.
        assert!(!st.should_drop(0, 1));
        assert!(st.should_drop(0, 1));
        assert!(st.should_drop(0, 1));
        assert!(!st.should_drop(0, 1));
        // Other routes are independent.
        assert!(!st.should_drop(1, 0));
    }

    #[test]
    fn link_mult_applies_only_inside_window() {
        let plan = FaultPlan::new().with_link(LinkFault {
            a: 0,
            b: 1,
            from: SimTime(100),
            until: SimTime(200),
            latency_mult: 4.0,
            bandwidth_mult: 0.5,
        });
        let st = FaultState::new(plan);
        assert_eq!(st.link_mult(0, 1, SimTime(50)), (1.0, 1.0));
        assert_eq!(st.link_mult(1, 0, SimTime(150)), (4.0, 2.0));
        assert_eq!(st.link_mult(0, 1, SimTime(200)), (1.0, 1.0));
        assert_eq!(st.link_mult(2, 3, SimTime(150)), (1.0, 1.0));
    }

    #[test]
    fn kill_is_permanent_and_excluded_from_link_mult() {
        let plan = FaultPlan::new()
            .with_link(LinkFault::kill(0, 2, SimTime(100)))
            .with_link(LinkFault {
                a: 0,
                b: 1,
                from: SimTime(0),
                until: SimTime(500),
                latency_mult: 3.0,
                bandwidth_mult: 0.5,
            });
        let st = FaultState::new(plan);
        assert!(!st.pair_dead(0, 2, SimTime(99)));
        assert!(st.pair_dead(2, 0, SimTime(100)));
        assert!(st.pair_dead(0, 2, SimTime(u64::MAX)), "kills never heal");
        // The kill contributes nothing to the degradation multipliers.
        assert_eq!(st.link_mult(0, 2, SimTime(200)), (1.0, 1.0));
        assert_eq!(st.link_mult(0, 1, SimTime(200)), (3.0, 2.0));
        assert_eq!(st.dead_pairs(SimTime(50)), vec![]);
        assert_eq!(st.dead_pairs(SimTime(100)), vec![(0, 2)]);
    }

    #[test]
    fn fault_free_state_is_inactive() {
        let st = FaultState::none();
        assert!(!st.is_active());
        assert!(st.crash_iteration(0).is_none());
        assert_eq!(st.compute_mult(0, SimTime(123)), 1.0);
    }
}
